//! Cache-blocked, vectorizer-friendly `f32` GEMM kernels and the runtime
//! dispatcher selecting between them.
//!
//! DeepSeq's levelized propagation spends nearly all of its time in matrix
//! products (per-level message transforms and the GRU gates of the paper's
//! Combine function, Eq. 8). This module concentrates the hot inner loops in
//! one place, behind the [`Kernel`] dispatch enum:
//!
//! * [`Kernel::Naive`] — the reference `i-k-j` triple loop. Slowest, but the
//!   arithmetic every other variant is required to reproduce. Default for
//!   training so tape results stay bit-for-bit stable across releases.
//! * [`Kernel::Blocked`] — the same accumulation order, restructured into
//!   cache-sized `k`-panels and register-tiled output columns so the
//!   autovectorizer emits wide mul-add loops and each output element stays
//!   in a register across a whole panel.
//! * [`Kernel::Packed`] — additionally packs the right-hand operand into
//!   contiguous column panels and amortizes them over a 4-row micro-kernel;
//!   wins once operands outgrow L1 (wide hidden dims, big level batches).
//! * [`Kernel::Simd`] — explicit **fast mode**: AVX2/FMA micro-kernels
//!   over the packed panel layout (runtime feature detection; hosts
//!   without AVX2 run a bitwise-identical portable fused fallback — see
//!   the `simd` module's docs via [`simd_accelerated`]). Opt-in only, never a
//!   default.
//! * [`Kernel::Auto`] — not another arithmetic variant but a shape-aware
//!   policy resolving to one of the above per product (see
//!   [`Kernel::resolve`]), with per-shape autotuned tile sizes: candidate
//!   (kernel, `k`-panel) configurations are timed interleaved on the
//!   first products of a shape, then the winner is pinned. Default for
//!   serving, so callers stop hardcoding variants.
//!
//! # The two-mode numerics contract
//!
//! **Bitwise mode** (`naive` | `blocked` | `packed` | `auto`): every
//! variant accumulates each output element over `k` **in ascending
//! order**, without fused multiply-add, so for finite inputs all of them
//! produce bitwise-identical results (property-tested in
//! `crates/nn/tests/properties.rs`). Picking among them is purely a
//! performance decision, never a numerics decision. This mode is the
//! default everywhere and the *only* mode the tape/training path will
//! run: [`Kernel::global`] maps `simd` back to the reference kernel.
//!
//! **Fast mode** (`simd`): fused multiply-add accumulation, still
//! ascending-`k` per element, so results are *self*-deterministic —
//! bitwise-identical across runs, thread counts and hosts (the portable
//! fallback computes the same bits as the AVX2 path) — but not bitwise
//! equal to the reference. The divergence is property-tested against
//! naive in `crates/nn/tests/kernel_numerics.rs` (relative error ≤ 1e-5
//! in the backward-error sense, bounded ULP distance on well-conditioned
//! elements). See docs/ARCHITECTURE.md, "Numerics contract", for when
//! each mode is safe. [`Kernel::is_bitwise`] answers the question
//! programmatically.
//!
//! The fused entry point [`Kernel::matmul_bias_act`] covers the GRU gate
//! pattern `act(x·W + h·U + b)` in one call; it performs the identical
//! floating-point sequence as the unfused ops it replaces (product, zip-add,
//! broadcast bias, activation), so fusing is also numerics-neutral.
//!
//! # Threading
//!
//! Large products are row-partitioned across the worker [`Pool`]: each
//! output row is still accumulated in ascending-`k` order by exactly one
//! worker, so multi-threaded results are **bitwise equal to single-threaded
//! at any thread count** — the chunk boundary only decides *who* computes a
//! row, never *how*. The plain entry points ([`Kernel::matmul`],
//! [`Kernel::matmul_into`], …) use the process-wide [`Pool::global`]
//! (sized by `DEEPSEQ_THREADS`); the `*_on` twins
//! ([`Kernel::matmul_into_on`], …) take an explicit pool for engines,
//! benchmarks and tests that manage their own. Products below
//! [`PAR_MIN_FLOPS`] multiply-adds stay on the calling thread.
//!
//! # Selection
//!
//! The `DEEPSEQ_KERNEL` environment variable (`naive` | `blocked` |
//! `packed` | `auto` | `simd`, read once per process; unrecognized values
//! warn once to stderr and keep the default) overrides the serving
//! default, and the training default for the bitwise names:
//!
//! ```text
//! DEEPSEQ_KERNEL=simd target/release/deepseq-serve predict design.aag
//! ```
//!
//! # Example
//!
//! ```
//! use deepseq_nn::{Kernel, Matrix};
//!
//! let a = Matrix::from_fn(64, 48, |r, c| (r + c) as f32 * 0.01);
//! let b = Matrix::from_fn(48, 32, |r, c| (r as f32 - c as f32) * 0.01);
//!
//! // The bitwise kernels agree bitwise on finite inputs, and so does
//! // `Auto` — unless this process opted into fast mode, where `Auto`
//! // routes to the fused simd kernel instead.
//! let reference = Kernel::Naive.matmul(&a, &b);
//! assert_eq!(Kernel::Blocked.matmul(&a, &b), reference);
//! assert_eq!(Kernel::Packed.matmul(&a, &b), reference);
//! if !Kernel::fast_mode() {
//!     assert_eq!(Kernel::Auto.matmul(&a, &b), reference);
//! }
//!
//! // `Matrix::matmul` dispatches through the process-wide *training*
//! // default, which refuses fast mode — bitwise in every environment.
//! assert_eq!(a.matmul(&b), reference);
//! ```

use std::cell::RefCell;
use std::ops::Range;
use std::sync::OnceLock;

use crate::matrix::Matrix;
use crate::pool::{chunk_ranges_or_whole, Pool};

mod simd;
mod tune;

/// True when the running CPU executes [`Kernel::Simd`]'s AVX2/FMA paths;
/// false means simd products run the portable fused fallback, which is
/// slower but produces the same bits. Useful for benchmarks and CI
/// notices; never needed for correctness.
pub fn simd_accelerated() -> bool {
    simd::accelerated()
}

/// Environment variable naming the kernel to use process-wide
/// (`naive` | `blocked` | `packed` | `auto` | `simd`). Read once, on first
/// dispatch; an unrecognized value warns once to stderr and keeps the
/// default, and an empty value behaves like an unset variable.
pub const KERNEL_ENV: &str = "DEEPSEQ_KERNEL";

/// Output-column register tile width of the blocked/packed/simd kernels
/// (one AVX2 `__m256` of f32s — the packed panel layout feeds the simd
/// micro-kernels unchanged).
const NR: usize = 8;

/// Default rows of the right-hand operand kept hot per `k`-panel
/// (`KC × n` f32s should sit comfortably in L1/L2 for serve-path widths).
/// [`Kernel::Auto`] tunes the actual panel height per shape; pinned
/// [`Kernel::Blocked`] uses the static per-shape choice of
/// [`tune::kc_for`].
const KC: usize = 128;

/// Row tile height of the packed micro-kernel.
const MR: usize = 4;

/// Minimum multiply-adds (`m·k·n`) before a product fans out across the
/// pool — below this, partitioning overhead outweighs the work.
pub const PAR_MIN_FLOPS: usize = 1 << 16;

/// Minimum output rows per parallel chunk.
const PAR_MIN_ROWS: usize = 8;

thread_local! {
    /// Reused panel-packing scratch of [`Kernel::Packed`]; grows to the
    /// largest right-hand operand seen on this thread and is then reused,
    /// mirroring the serve path's `Workspace` buffer discipline. Parallel
    /// packed products pack once on the calling thread and share the panels
    /// read-only with the workers.
    static PACK_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with the thread-local pack buffer *moved out* of its `RefCell`
/// for the duration. The buffer must not stay borrowed across a pool
/// fan-out: while parked in [`Pool::run`] this thread may help-execute
/// another task that itself runs a packed product, and a live borrow would
/// panic (`BorrowMutError`). Taking the `Vec` out keeps the re-entrant
/// product on its own (freshly grown) buffer; ours is restored afterwards.
fn with_pack_scratch(f: impl FnOnce(&mut Vec<f32>)) {
    let mut pack = PACK_SCRATCH.with(|s| std::mem::take(&mut *s.borrow_mut()));
    f(&mut pack);
    PACK_SCRATCH.with(|s| *s.borrow_mut() = pack);
}

/// Element-wise activation applied by the fused kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Act {
    /// No activation.
    Identity,
    /// Logistic sigmoid `1 / (1 + e^(-x))`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit `max(x, 0)`.
    Relu,
}

impl Act {
    /// Applies the activation in place. The per-element expressions match
    /// [`Tape`](crate::Tape)'s `sigmoid`/`tanh`/`relu` ops exactly, so fused
    /// and unfused paths stay bitwise-equal.
    pub fn apply(self, data: &mut [f32]) {
        match self {
            Act::Identity => {}
            Act::Sigmoid => {
                for v in data {
                    *v = 1.0 / (1.0 + (-*v).exp());
                }
            }
            Act::Tanh => {
                for v in data {
                    *v = v.tanh();
                }
            }
            Act::Relu => {
                for v in data {
                    *v = v.max(0.0);
                }
            }
        }
    }
}

/// The GEMM variant used by the matrix-product entry points.
///
/// `Kernel` is a stateless `Copy` token: hold one wherever you do repeated
/// products (the serve `Workspace` does) and call its methods. See the
/// [module docs](self) for variant trade-offs and the `DEEPSEQ_KERNEL`
/// override.
///
/// # Example
/// ```
/// use deepseq_nn::{Kernel, Matrix};
///
/// let x = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
/// let w = Matrix::eye(5);
/// let mut out = Matrix::default();
/// Kernel::Blocked.matmul_into(&x, &w, &mut out);
/// assert_eq!(out, x);
/// assert_eq!(Kernel::parse("blocked"), Some(Kernel::Blocked));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Kernel {
    /// Reference `i-k-j` triple loop (skips zero left-hand entries).
    #[default]
    Naive,
    /// Cache-blocked `k`-panels with register-tiled output columns.
    Blocked,
    /// Blocked plus contiguous B-panel packing and a 4×8 micro-kernel.
    Packed,
    /// **Fast mode**: AVX2/FMA micro-kernels over the packed panel layout
    /// (portable fused fallback off-x86). Self-deterministic but *not*
    /// bitwise-equal to the bitwise variants; see the
    /// [module docs](self) for the numerics contract. Opt-in only.
    Simd,
    /// Shape-aware policy: resolves to one of the variants above per
    /// product (see [`Kernel::resolve`]), with per-shape autotuned tile
    /// sizes. Bitwise-neutral in bitwise mode; resolves to
    /// [`Kernel::Simd`] when fast mode is enabled.
    Auto,
}

impl Kernel {
    /// The concrete **bitwise** arithmetic variants, for iteration in
    /// tests and benchmarks. [`Kernel::Auto`] is excluded because it
    /// resolves to one of these (no extra arithmetic); [`Kernel::Simd`]
    /// is excluded because it is a different arithmetic under a different
    /// (bounded, not bitwise) contract — suites iterate it explicitly.
    pub const ALL: [Kernel; 3] = [Kernel::Naive, Kernel::Blocked, Kernel::Packed];

    /// Parses a kernel name (`naive` | `blocked` | `packed` | `auto` |
    /// `simd`, case-insensitive). These are exactly the values accepted
    /// in `DEEPSEQ_KERNEL`.
    pub fn parse(name: &str) -> Option<Kernel> {
        match name.trim().to_ascii_lowercase().as_str() {
            "naive" => Some(Kernel::Naive),
            "blocked" => Some(Kernel::Blocked),
            "packed" => Some(Kernel::Packed),
            "simd" => Some(Kernel::Simd),
            "auto" => Some(Kernel::Auto),
            _ => None,
        }
    }

    /// The kernel named by `DEEPSEQ_KERNEL`, if set to a recognized name.
    /// The variable is read once; later changes have no effect. An empty
    /// (or all-whitespace) value behaves like an unset variable; anything
    /// else [`Kernel::parse`] rejects warns once to stderr and behaves
    /// like an unset variable.
    pub fn from_env() -> Option<Kernel> {
        static FROM_ENV: OnceLock<Option<Kernel>> = OnceLock::new();
        *FROM_ENV.get_or_init(|| match std::env::var(KERNEL_ENV) {
            Ok(value) if value.trim().is_empty() => None,
            Ok(value) => {
                let parsed = Kernel::parse(&value);
                if parsed.is_none() {
                    crate::config::report_warning(format!(
                        "{KERNEL_ENV}={value:?} is not a recognized kernel \
                         (accepted: naive | blocked | packed | auto | simd); \
                         using the default"
                    ));
                }
                parsed
            }
            Err(_) => None,
        })
    }

    /// Is the process in fast mode (`DEEPSEQ_KERNEL=simd`)? In fast mode
    /// the *serving* path runs the simd kernels while the tape/training
    /// path stays on the bitwise reference — see [`Kernel::global`].
    pub fn fast_mode() -> bool {
        Kernel::from_env() == Some(Kernel::Simd)
    }

    /// Does this kernel participate in the bitwise contract (results
    /// bit-for-bit equal to [`Kernel::Naive`])? True for every bitwise
    /// variant; false for [`Kernel::Simd`], and false for
    /// [`Kernel::Auto`] in fast mode (where it resolves to simd).
    pub fn is_bitwise(self) -> bool {
        match self {
            Kernel::Naive | Kernel::Blocked | Kernel::Packed => true,
            Kernel::Auto => !Kernel::fast_mode(),
            Kernel::Simd => false,
        }
    }

    /// The process-wide default kernel used by the [`Matrix`] product
    /// methods (and therefore the autograd tape): `DEEPSEQ_KERNEL` if set
    /// to a bitwise kernel, otherwise [`Kernel::Naive`]. `simd`
    /// deliberately maps to the reference loops here — fast mode is a
    /// serving contract, and training/gradchecks/determinism suites must
    /// stay bitwise no matter what the environment says (pinned by
    /// `crates/core/tests/simd_guard.rs`).
    pub fn global() -> Kernel {
        match Kernel::from_env() {
            Some(Kernel::Simd) | None => Kernel::Naive,
            Some(kernel) => kernel,
        }
    }

    /// The serving default: `DEEPSEQ_KERNEL` if set (including `simd` —
    /// this is the entry point that honors fast mode), otherwise
    /// [`Kernel::Auto`] — the tape-free inference path (`deepseq-serve`)
    /// picks a kernel per product shape.
    pub fn for_serve() -> Kernel {
        Kernel::from_env().unwrap_or(Kernel::Auto)
    }

    /// The lower-case name (`"naive"` | `"blocked"` | `"packed"` |
    /// `"simd"` | `"auto"`).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Naive => "naive",
            Kernel::Blocked => "blocked",
            Kernel::Packed => "packed",
            Kernel::Simd => "simd",
            Kernel::Auto => "auto",
        }
    }

    /// The [`crate::trace::pack_gemm`] tag for a concrete kernel, so GEMM
    /// spans distinguish simd from scalar work in `/debug/trace`.
    fn trace_tag(self) -> u8 {
        match self {
            Kernel::Naive => 1,
            Kernel::Blocked => 2,
            Kernel::Packed => 3,
            Kernel::Simd => 4,
            Kernel::Auto => 0,
        }
    }

    /// Fast-mode dispatch cutoff: the fused path packs `b` (`k·n` panel
    /// writes) before any arithmetic, so products with small right-hand
    /// operands stay on the reference loops. Deliberately a function of
    /// `k` and `n` only — higher layers (the serve forward pass)
    /// partition *rows* of one logical product across scratch chunks,
    /// and the kernel choice, and therefore the bits, must not change
    /// with that partitioning (fast mode's self-determinism contract).
    fn fused_pays_off(k: usize, n: usize) -> bool {
        k.saturating_mul(n) >= 256
    }

    /// The concrete variant used for an `m×k · k×n` product.
    ///
    /// [`Kernel::Auto`] picks by shape: tiny products (under ~1 K
    /// multiply-adds, where call overhead and tile setup dominate) stay
    /// on the reference loops; otherwise the per-shape autotuner's pinned
    /// winner is used once trials converge, with the static prior until
    /// then (right-hand operands beyond L1 — `k·n` over ~32 K elements —
    /// pay for B-panel packing, the rest takes the cache-blocked kernel).
    /// In fast mode both [`Kernel::Auto`] and [`Kernel::Simd`] instead
    /// split purely on `Kernel::fused_pays_off`: fused panels when the
    /// right-hand operand is big enough, reference loops (trivially
    /// within the fast-mode error bound) when it is not. In bitwise mode
    /// every choice is bitwise-neutral, so this is purely a performance
    /// policy; in fast mode the `m`-independence of the split is load-
    /// bearing (see `Kernel::fused_pays_off`).
    pub fn resolve(self, m: usize, k: usize, n: usize) -> Kernel {
        match self {
            Kernel::Auto => {
                if Kernel::fast_mode() {
                    return Kernel::Simd.resolve(m, k, n);
                }
                if m.saturating_mul(k).saturating_mul(n) < 1_024 {
                    // So tiny that call overhead and tile setup dominate:
                    // the reference loops (with their zero-skip) win.
                    Kernel::Naive
                } else if let Some(c) = tune::pinned(tune::Family::Gemm, m, k, n) {
                    c.kernel
                } else if k.saturating_mul(n) >= 32_768 {
                    Kernel::Packed
                } else {
                    // Even for narrow outputs (n < NR) the blocked
                    // kernel's register tail beats the reference loop's
                    // per-element branch on dense operands.
                    Kernel::Blocked
                }
            }
            Kernel::Simd if !Kernel::fused_pays_off(k, n) => Kernel::Naive,
            other => other,
        }
    }

    /// The execution plan for one product: the concrete kernel, the
    /// blocked kernel's `k`-panel height, and (during `Auto`'s tuning
    /// window) an in-flight timing trial to report back via
    /// [`Plan::finish`].
    fn plan(self, family: tune::Family, m: usize, k: usize, n: usize) -> Plan {
        let flops = m.saturating_mul(k).saturating_mul(n);
        match self {
            Kernel::Naive | Kernel::Packed => Plan::untimed(self, 0),
            Kernel::Blocked => Plan::untimed(self, tune::kc_for(k, n)),
            Kernel::Simd => {
                if Kernel::fused_pays_off(k, n) {
                    Plan::untimed(Kernel::Simd, 0)
                } else {
                    Plan::untimed(Kernel::Naive, 0)
                }
            }
            Kernel::Auto => {
                if Kernel::fast_mode() {
                    Kernel::Simd.plan(family, m, k, n)
                } else if flops < 1_024 {
                    Plan::untimed(Kernel::Naive, 0)
                } else {
                    let (candidate, trial) = tune::pick(family, m, k, n);
                    Plan {
                        kernel: candidate.kernel,
                        kc: candidate.kc,
                        trial,
                    }
                }
            }
        }
    }

    /// Matrix product `a × b` into a fresh matrix.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matmul(self, a: &Matrix, b: &Matrix) -> Matrix {
        self.matmul_on(Pool::global(), a, b)
    }

    /// [`Kernel::matmul`] on an explicit worker pool.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matmul_on(self, pool: &Pool, a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.matmul_into_on(pool, a, b, &mut out);
        out
    }

    /// Writes `a × b` into `out` (reshaped via [`Matrix::reset`]), reusing
    /// `out`'s allocation.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matmul_into(self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        self.matmul_into_on(Pool::global(), a, b, out);
    }

    /// [`Kernel::matmul_into`] on an explicit worker pool: rows of `out`
    /// are partitioned across the pool when the product is large enough
    /// (results are bitwise-identical at any thread count).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matmul_into_on(self, pool: &Pool, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        assert_eq!(
            a.cols(),
            b.rows(),
            "matmul {}x{} × {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        );
        out.reset(a.rows(), b.cols());
        self.gemm_acc(
            pool,
            a.data(),
            b.data(),
            out.data_mut(),
            a.rows(),
            a.cols(),
            b.cols(),
        );
    }

    /// `aᵀ × b` without materializing the transpose (tape backward pass).
    ///
    /// # Panics
    /// Panics if row counts differ.
    pub fn t_matmul(self, a: &Matrix, b: &Matrix) -> Matrix {
        self.t_matmul_on(Pool::global(), a, b)
    }

    /// [`Kernel::t_matmul`] on an explicit worker pool. Output rows
    /// (columns of `a`) are partitioned across the pool for large products;
    /// per output element the contraction stays in ascending row order, so
    /// results are bitwise-identical at any thread count.
    ///
    /// # Panics
    /// Panics if row counts differ.
    pub fn t_matmul_on(self, pool: &Pool, a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.rows(), b.rows(), "t_matmul row mismatch");
        let (m, ka, n) = (a.rows(), a.cols(), b.cols());
        let mut out = Matrix::zeros(ka, n);
        if ka == 0 || n == 0 {
            return out;
        }
        let plan = self.plan(tune::Family::TGemm, ka, m, n);
        let _span = crate::trace::span_with(
            crate::trace::SpanKind::Gemm,
            crate::trace::pack_gemm(ka, m, n, plan.kernel.trace_tag()),
        );
        let ranges = par_ranges(pool, ka, m, n);
        match plan.kernel {
            Kernel::Naive => run_trow_tasks(
                pool,
                ranges,
                a.data(),
                b.data(),
                out.data_mut(),
                m,
                ka,
                n,
                t_gemm_naive_rows,
            ),
            Kernel::Blocked => {
                let kc = plan.kc;
                run_trow_tasks(
                    pool,
                    ranges,
                    a.data(),
                    b.data(),
                    out.data_mut(),
                    m,
                    ka,
                    n,
                    move |a, b, o, m, ka, n, i0, i1| {
                        t_gemm_blocked_rows(a, b, o, m, ka, n, i0, i1, kc)
                    },
                );
            }
            Kernel::Packed => with_pack_scratch(|pack| {
                pack_b(b.data(), m, n, pack);
                run_trow_tasks(
                    pool,
                    ranges,
                    a.data(),
                    pack,
                    out.data_mut(),
                    m,
                    ka,
                    n,
                    t_gemm_packed_rows,
                );
            }),
            Kernel::Simd => with_pack_scratch(|pack| {
                pack_b(b.data(), m, n, pack);
                run_trow_tasks(
                    pool,
                    ranges,
                    a.data(),
                    pack,
                    out.data_mut(),
                    m,
                    ka,
                    n,
                    simd::t_gemm_fused_rows,
                );
            }),
            Kernel::Auto => unreachable!("plan returns a concrete kernel"),
        }
        plan.finish();
        out
    }

    /// `a × bᵀ` without materializing the transpose (tape backward pass).
    ///
    /// # Panics
    /// Panics if column counts differ.
    pub fn matmul_t(self, a: &Matrix, b: &Matrix) -> Matrix {
        self.matmul_t_on(Pool::global(), a, b)
    }

    /// [`Kernel::matmul_t`] on an explicit worker pool. Rows of `a` are
    /// partitioned across the pool for large products; every output element
    /// is one ascending-`k` dot product regardless of partitioning, so
    /// results are bitwise-identical at any thread count.
    ///
    /// # Panics
    /// Panics if column counts differ.
    pub fn matmul_t_on(self, pool: &Pool, a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.cols(), "matmul_t col mismatch");
        let (m, k, nb) = (a.rows(), a.cols(), b.rows());
        let mut out = Matrix::zeros(m, nb);
        if m == 0 || nb == 0 {
            return out;
        }
        let plan = self.plan(tune::Family::BtGemm, m, k, nb);
        let _span = crate::trace::span_with(
            crate::trace::SpanKind::Gemm,
            crate::trace::pack_gemm(m, k, nb, plan.kernel.trace_tag()),
        );
        let ranges = par_ranges(pool, m, k, nb);
        match plan.kernel {
            Kernel::Naive => run_row_tasks(
                pool,
                ranges,
                a.data(),
                b.data(),
                out.data_mut(),
                k,
                nb,
                gemm_bt_naive_rows,
            ),
            Kernel::Blocked => run_row_tasks(
                pool,
                ranges,
                a.data(),
                b.data(),
                out.data_mut(),
                k,
                nb,
                gemm_bt_blocked_rows,
            ),
            Kernel::Packed => with_pack_scratch(|pack| {
                // Packing bᵀ into k-major panels turns `a × bᵀ` into the
                // plain packed GEMM micro-kernel.
                pack_bt(b.data(), k, nb, pack);
                run_row_tasks(
                    pool,
                    ranges,
                    a.data(),
                    pack,
                    out.data_mut(),
                    k,
                    nb,
                    gemm_packed_rows,
                );
            }),
            Kernel::Simd => with_pack_scratch(|pack| {
                // Same trick as packed: panelized bᵀ feeds the plain
                // fused micro-kernel.
                pack_bt(b.data(), k, nb, pack);
                run_row_tasks(
                    pool,
                    ranges,
                    a.data(),
                    pack,
                    out.data_mut(),
                    k,
                    nb,
                    simd::gemm_fused_rows,
                );
            }),
            Kernel::Auto => unreachable!("plan returns a concrete kernel"),
        }
        plan.finish();
        out
    }

    /// Fused `out = act(x·w [+ h·u] [+ bias])` — the GRU gate pattern of the
    /// Combine function (Eq. 8) and the additive-attention score (Eq. 5/6)
    /// in one call.
    ///
    /// `tmp` is caller-owned scratch for the optional second product (the
    /// serve `Workspace` threads its own buffer through); it is only touched
    /// when `second` is `Some`. The floating-point sequence is exactly the
    /// unfused one — product, zip-add of the fully formed second product,
    /// broadcast bias, activation — so results are bitwise-identical to
    /// composing [`Kernel::matmul_into`], [`Matrix::add_assign`],
    /// [`Matrix::add_row_assign`] and [`Act::apply`] by hand.
    ///
    /// # Panics
    /// Panics on any operand dimension mismatch.
    #[allow(clippy::too_many_arguments)]
    pub fn matmul_bias_act(
        self,
        x: &Matrix,
        w: &Matrix,
        second: Option<(&Matrix, &Matrix)>,
        bias: Option<&Matrix>,
        act: Act,
        out: &mut Matrix,
        tmp: &mut Matrix,
    ) {
        self.matmul_bias_act_on(Pool::global(), x, w, second, bias, act, out, tmp);
    }

    /// [`Kernel::matmul_bias_act`] on an explicit worker pool (the products
    /// row-partition; the element-wise tail stays on the caller).
    ///
    /// # Panics
    /// Panics on any operand dimension mismatch.
    #[allow(clippy::too_many_arguments)]
    pub fn matmul_bias_act_on(
        self,
        pool: &Pool,
        x: &Matrix,
        w: &Matrix,
        second: Option<(&Matrix, &Matrix)>,
        bias: Option<&Matrix>,
        act: Act,
        out: &mut Matrix,
        tmp: &mut Matrix,
    ) {
        self.matmul_into_on(pool, x, w, out);
        if let Some((h, u)) = second {
            self.matmul_into_on(pool, h, u, tmp);
            out.add_assign(tmp);
        }
        if let Some(b) = bias {
            out.add_row_assign(b);
        }
        act.apply(out.data_mut());
    }

    /// Fused `out = act(x·w [+ bias])` — the dense-layer pattern of the
    /// regressor heads (single product, no scratch needed). Identical to
    /// [`Kernel::matmul_bias_act`] with `second = None`.
    ///
    /// # Panics
    /// Panics on operand dimension mismatch.
    pub fn linear_act(
        self,
        x: &Matrix,
        w: &Matrix,
        bias: Option<&Matrix>,
        act: Act,
        out: &mut Matrix,
    ) {
        self.linear_act_on(Pool::global(), x, w, bias, act, out);
    }

    /// [`Kernel::linear_act`] on an explicit worker pool.
    ///
    /// # Panics
    /// Panics on operand dimension mismatch.
    pub fn linear_act_on(
        self,
        pool: &Pool,
        x: &Matrix,
        w: &Matrix,
        bias: Option<&Matrix>,
        act: Act,
        out: &mut Matrix,
    ) {
        self.matmul_into_on(pool, x, w, out);
        if let Some(b) = bias {
            out.add_row_assign(b);
        }
        act.apply(out.data_mut());
    }

    /// `out += a × b` on raw row-major slices, row-partitioned across the
    /// pool when large enough.
    #[allow(clippy::too_many_arguments)]
    fn gemm_acc(
        self,
        pool: &Pool,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        if m == 0 || n == 0 {
            return;
        }
        let plan = self.plan(tune::Family::Gemm, m, k, n);
        let _span = crate::trace::span_with(
            crate::trace::SpanKind::Gemm,
            crate::trace::pack_gemm(m, k, n, plan.kernel.trace_tag()),
        );
        let ranges = par_ranges(pool, m, k, n);
        match plan.kernel {
            Kernel::Naive => run_row_tasks(pool, ranges, a, b, out, k, n, gemm_naive),
            Kernel::Blocked => {
                let kc = plan.kc;
                run_row_tasks(pool, ranges, a, b, out, k, n, move |a, b, o, m, k, n| {
                    gemm_blocked(a, b, o, m, k, n, kc)
                });
            }
            Kernel::Packed => with_pack_scratch(|pack| {
                pack_b(b, k, n, pack);
                run_row_tasks(pool, ranges, a, pack, out, k, n, gemm_packed_rows);
            }),
            Kernel::Simd => with_pack_scratch(|pack| {
                pack_b(b, k, n, pack);
                run_row_tasks(pool, ranges, a, pack, out, k, n, simd::gemm_fused_rows);
            }),
            Kernel::Auto => unreachable!("plan returns a concrete kernel"),
        }
        plan.finish();
    }
}

/// A resolved execution plan for one product (see [`Kernel::plan`]).
struct Plan {
    /// The concrete kernel to run.
    kernel: Kernel,
    /// `k`-panel height for [`Kernel::Blocked`] (0 when unused).
    kc: usize,
    /// In-flight autotuning trial to report after the product, if any.
    trial: Option<tune::Trial>,
}

impl Plan {
    fn untimed(kernel: Kernel, kc: usize) -> Plan {
        Plan {
            kernel,
            kc,
            trial: None,
        }
    }

    /// Report the trial timing (a no-op outside `Auto`'s tuning window).
    fn finish(self) {
        if let Some(trial) = self.trial {
            tune::finish(trial);
        }
    }
}

/// Contiguous output-row ranges for one product: one `0..rows` range when
/// the product is too small to pay for fan-out (or the pool has no
/// workers), otherwise up to `pool.threads()` chunks of at least
/// [`PAR_MIN_ROWS`] rows.
fn par_ranges(pool: &Pool, rows: usize, k: usize, n: usize) -> Vec<Range<usize>> {
    let flops = rows.saturating_mul(k).saturating_mul(n);
    let max_chunks = if flops >= PAR_MIN_FLOPS {
        pool.threads()
    } else {
        1
    };
    chunk_ranges_or_whole(rows, max_chunks, PAR_MIN_ROWS)
}

/// Runs a row kernel over `ranges`, splitting `a` and `out` by rows and
/// sharing `b` read-only. Single range → straight call on the caller.
/// The kernel signature is `(a_rows, b_or_panels, out_rows, rows, k, n)`
/// where `a_rows`/`out_rows` hold exactly `rows` rows; `f` may be a plain
/// fn or a capture-light closure (the tuned blocked kernel carries its
/// `kc`).
#[allow(clippy::too_many_arguments)]
fn run_row_tasks<F>(
    pool: &Pool,
    ranges: Vec<Range<usize>>,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    k: usize,
    n: usize,
    f: F,
) where
    F: Fn(&[f32], &[f32], &mut [f32], usize, usize, usize) + Copy + Send + Sync,
{
    if ranges.len() == 1 {
        let r = ranges.into_iter().next().expect("one range");
        f(&a[r.start * k..r.end * k], b, out, r.len(), k, n);
        return;
    }
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(ranges.len());
    let mut rest = out;
    for r in ranges {
        let rows = r.len();
        let (chunk, tail) = rest.split_at_mut(rows * n);
        rest = tail;
        let a_rows = &a[r.start * k..r.end * k];
        tasks.push(Box::new(move || f(a_rows, b, chunk, rows, k, n)));
    }
    pool.run(tasks);
}

/// Runs a transpose row kernel over `ranges` of output rows (columns of
/// `a`); `a` and `b` are shared read-only, `out` split by rows. The
/// kernel signature is `(a, b_or_panels, out_rows, m, ka, n, i0, i1)` —
/// computes output rows `i0..i1` (columns of `a`) into `out_rows`.
#[allow(clippy::too_many_arguments)]
fn run_trow_tasks<F>(
    pool: &Pool,
    ranges: Vec<Range<usize>>,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    ka: usize,
    n: usize,
    f: F,
) where
    F: Fn(&[f32], &[f32], &mut [f32], usize, usize, usize, usize, usize) + Copy + Send + Sync,
{
    if ranges.len() == 1 {
        let r = ranges.into_iter().next().expect("one range");
        f(a, b, out, m, ka, n, r.start, r.end);
        return;
    }
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(ranges.len());
    let mut rest = out;
    for r in ranges {
        let (chunk, tail) = rest.split_at_mut(r.len() * n);
        rest = tail;
        tasks.push(Box::new(move || f(a, b, chunk, m, ka, n, r.start, r.end)));
    }
    pool.run(tasks);
}

/// Reference `i-k-j` loop; skips zero left-hand entries. This is the
/// arithmetic contract every other kernel reproduces bit-for-bit.
fn gemm_naive(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// Cache-blocked GEMM: `k` is split into `kc`-row panels of `b` (processed
/// in ascending order, preserving per-element accumulation order — the
/// panel height is a pure locality knob, autotuned per shape by
/// [`Kernel::Auto`]); within a panel each output row is walked in
/// `NR`-wide register tiles so the accumulators never round-trip through
/// memory per `k` step.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize, kc: usize) {
    let n_main = n - n % NR;
    let kc = kc.max(1);
    let mut kk = 0;
    while kk < k {
        let kc = kc.min(k - kk);
        let bpanel = &b[kk * n..(kk + kc) * n];
        // Two output rows at a time: every loaded `b` tile is used twice.
        // `chunks_exact` + `first_chunk` keep the inner loops free of bounds
        // checks, so they compile to straight-line vector mul-adds over the
        // register accumulators.
        let m_main = m - m % 2;
        let mut i = 0;
        while i < m_main {
            let arow0 = &a[i * k + kk..i * k + kk + kc];
            let arow1 = &a[(i + 1) * k + kk..(i + 1) * k + kk + kc];
            let (orow0, orow1) = out[i * n..(i + 2) * n].split_at_mut(n);
            let mut j = 0;
            while j < n_main {
                let mut acc0 = [0.0f32; NR];
                let mut acc1 = [0.0f32; NR];
                acc0.copy_from_slice(&orow0[j..j + NR]);
                acc1.copy_from_slice(&orow1[j..j + NR]);
                for ((&av0, &av1), brow_full) in arow0.iter().zip(arow1).zip(bpanel.chunks_exact(n))
                {
                    let brow: &[f32; NR] = brow_full[j..].first_chunk().expect("j + NR <= n");
                    for t in 0..NR {
                        acc0[t] += av0 * brow[t];
                        acc1[t] += av1 * brow[t];
                    }
                }
                orow0[j..j + NR].copy_from_slice(&acc0);
                orow1[j..j + NR].copy_from_slice(&acc1);
                j += NR;
            }
            for j in n_main..n {
                let mut acc0 = orow0[j];
                let mut acc1 = orow1[j];
                for ((&av0, &av1), brow_full) in arow0.iter().zip(arow1).zip(bpanel.chunks_exact(n))
                {
                    acc0 += av0 * brow_full[j];
                    acc1 += av1 * brow_full[j];
                }
                orow0[j] = acc0;
                orow1[j] = acc1;
            }
            i += 2;
        }
        if i < m {
            let arow = &a[i * k + kk..i * k + kk + kc];
            let orow = &mut out[i * n..(i + 1) * n];
            let mut j = 0;
            while j < n_main {
                let mut acc = [0.0f32; NR];
                acc.copy_from_slice(&orow[j..j + NR]);
                for (&av, brow_full) in arow.iter().zip(bpanel.chunks_exact(n)) {
                    let brow: &[f32; NR] = brow_full[j..].first_chunk().expect("j + NR <= n");
                    for t in 0..NR {
                        acc[t] += av * brow[t];
                    }
                }
                orow[j..j + NR].copy_from_slice(&acc);
                j += NR;
            }
            for j in n_main..n {
                let mut acc = orow[j];
                for (&av, brow_full) in arow.iter().zip(bpanel.chunks_exact(n)) {
                    acc += av * brow_full[j];
                }
                orow[j] = acc;
            }
        }
        kk += kc;
    }
}

/// Packs row-major `b` (`rows × cols`) into `NR`-wide column panels laid
/// out contraction-major (contiguous per contraction step). Panel tails are
/// zero-padded; padded lanes are computed and discarded by the consumers.
fn pack_b(b: &[f32], rows: usize, cols: usize, pack: &mut Vec<f32>) {
    let panels = cols.div_ceil(NR);
    pack.clear();
    pack.resize(panels * rows * NR, 0.0);
    for jp in 0..panels {
        let j0 = jp * NR;
        let w = NR.min(cols - j0);
        let dst = &mut pack[jp * rows * NR..(jp + 1) * rows * NR];
        for p in 0..rows {
            dst[p * NR..p * NR + w].copy_from_slice(&b[p * cols + j0..p * cols + j0 + w]);
        }
    }
}

/// Packs `bᵀ` of a row-major `b` (`nb × k`) into the same panel layout as
/// [`pack_b`] produces for a `k × nb` matrix, so `a × bᵀ` can run the plain
/// packed micro-kernel ([`gemm_packed_rows`]).
fn pack_bt(b: &[f32], k: usize, nb: usize, pack: &mut Vec<f32>) {
    let panels = nb.div_ceil(NR);
    pack.clear();
    pack.resize(panels * k * NR, 0.0);
    for jp in 0..panels {
        let j0 = jp * NR;
        let w = NR.min(nb - j0);
        let dst = &mut pack[jp * k * NR..(jp + 1) * k * NR];
        for t in 0..w {
            let brow = &b[(j0 + t) * k..(j0 + t + 1) * k];
            for (p, &bv) in brow.iter().enumerate() {
                dst[p * NR + t] = bv;
            }
        }
    }
}

/// Packed GEMM compute phase over pre-packed panels (see [`pack_b`]): an
/// `MR×NR` register micro-kernel sweeps `MR` rows of `a` at a time,
/// amortizing every packed panel load. Expects `a`/`out` to hold exactly
/// `m` rows (the caller may pass a row chunk).
fn gemm_packed_rows(a: &[f32], pack: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let panels = n.div_ceil(NR);
    let m_main = m - m % MR;
    for jp in 0..panels {
        let j0 = jp * NR;
        let w = NR.min(n - j0);
        let panel = &pack[jp * k * NR..(jp + 1) * k * NR];
        let mut i = 0;
        while i < m_main {
            // MR×NR register micro-kernel: pre-sliced `a` rows zipped with
            // the packed panel keep the `k` loop bounds-check free, and each
            // panel row load is amortized over MR output rows.
            let mut acc = [[0.0f32; NR]; MR];
            for (r, accr) in acc.iter_mut().enumerate() {
                accr[..w].copy_from_slice(&out[(i + r) * n + j0..(i + r) * n + j0 + w]);
            }
            let a0 = &a[i * k..(i + 1) * k];
            let a1 = &a[(i + 1) * k..(i + 2) * k];
            let a2 = &a[(i + 2) * k..(i + 3) * k];
            let a3 = &a[(i + 3) * k..(i + 4) * k];
            let [mut c0, mut c1, mut c2, mut c3] = acc;
            for ((((&av0, &av1), &av2), &av3), brow) in a0
                .iter()
                .zip(a1)
                .zip(a2)
                .zip(a3)
                .zip(panel.chunks_exact(NR))
            {
                for t in 0..NR {
                    c0[t] += av0 * brow[t];
                    c1[t] += av1 * brow[t];
                    c2[t] += av2 * brow[t];
                    c3[t] += av3 * brow[t];
                }
            }
            for (r, accr) in [c0, c1, c2, c3].iter().enumerate() {
                out[(i + r) * n + j0..(i + r) * n + j0 + w].copy_from_slice(&accr[..w]);
            }
            i += MR;
        }
        while i < m {
            let mut acc = [0.0f32; NR];
            acc[..w].copy_from_slice(&out[i * n + j0..i * n + j0 + w]);
            let arow = &a[i * k..(i + 1) * k];
            for (&av, brow) in arow.iter().zip(panel.chunks_exact(NR)) {
                for t in 0..NR {
                    acc[t] += av * brow[t];
                }
            }
            out[i * n + j0..i * n + j0 + w].copy_from_slice(&acc[..w]);
            i += 1;
        }
    }
}

/// Reference `aᵀ × b` over output rows `i0..i1`: accumulates row `r` of `a`
/// against row `r` of `b`, `r` ascending per output element — identical
/// order at any partitioning.
#[allow(clippy::too_many_arguments)]
fn t_gemm_naive_rows(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    ka: usize,
    n: usize,
    i0: usize,
    i1: usize,
) {
    for r in 0..m {
        let arow = &a[r * ka..(r + 1) * ka];
        let brow = &b[r * n..(r + 1) * n];
        for i in i0..i1 {
            let av = arow[i];
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[(i - i0) * n..(i - i0 + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// Blocked `aᵀ × b` over output rows `i0..i1`: `r` is split into `kc`-row
/// panels (ascending, preserving accumulation order; the panel height is
/// autotuned per shape by [`Kernel::Auto`]); each output row is walked in
/// `NR` register tiles.
#[allow(clippy::too_many_arguments)]
fn t_gemm_blocked_rows(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    ka: usize,
    n: usize,
    i0: usize,
    i1: usize,
    kc: usize,
) {
    let n_main = n - n % NR;
    let kc = kc.max(1);
    let mut rr = 0;
    while rr < m {
        let rc = kc.min(m - rr);
        for i in i0..i1 {
            let orow = &mut out[(i - i0) * n..(i - i0 + 1) * n];
            let mut j = 0;
            while j < n_main {
                let mut acc = [0.0f32; NR];
                acc.copy_from_slice(&orow[j..j + NR]);
                for p in rr..rr + rc {
                    let av = a[p * ka + i];
                    let brow = &b[p * n + j..p * n + j + NR];
                    for t in 0..NR {
                        acc[t] += av * brow[t];
                    }
                }
                orow[j..j + NR].copy_from_slice(&acc);
                j += NR;
            }
            for j in n_main..n {
                let mut acc = orow[j];
                for p in rr..rr + rc {
                    acc += a[p * ka + i] * b[p * n + j];
                }
                orow[j] = acc;
            }
        }
        rr += rc;
    }
}

/// Packed `aᵀ × b` over output rows `i0..i1`: `b` is packed once into
/// contraction-major `NR` panels ([`pack_b`]); an `MR×NR` micro-kernel
/// reads `a[r·ka + i..i+MR]` contiguously per contraction step. Per output
/// element the contraction runs `r` ascending — bitwise equal to naive.
#[allow(clippy::too_many_arguments)]
fn t_gemm_packed_rows(
    a: &[f32],
    pack: &[f32],
    out: &mut [f32],
    m: usize,
    ka: usize,
    n: usize,
    i0: usize,
    i1: usize,
) {
    let panels = n.div_ceil(NR);
    let rows = i1 - i0;
    let i_main = i0 + (rows - rows % MR);
    for jp in 0..panels {
        let j0 = jp * NR;
        let w = NR.min(n - j0);
        let panel = &pack[jp * m * NR..(jp + 1) * m * NR];
        let mut i = i0;
        while i < i_main {
            let mut acc = [[0.0f32; NR]; MR];
            for (r, accr) in acc.iter_mut().enumerate() {
                let o = (i - i0 + r) * n + j0;
                accr[..w].copy_from_slice(&out[o..o + w]);
            }
            let [mut c0, mut c1, mut c2, mut c3] = acc;
            for (p, brow) in panel.chunks_exact(NR).enumerate() {
                let acol: &[f32; MR] = a[p * ka + i..].first_chunk().expect("i + MR <= ka");
                for t in 0..NR {
                    c0[t] += acol[0] * brow[t];
                    c1[t] += acol[1] * brow[t];
                    c2[t] += acol[2] * brow[t];
                    c3[t] += acol[3] * brow[t];
                }
            }
            for (r, accr) in [c0, c1, c2, c3].iter().enumerate() {
                let o = (i - i0 + r) * n + j0;
                out[o..o + w].copy_from_slice(&accr[..w]);
            }
            i += MR;
        }
        while i < i1 {
            let mut acc = [0.0f32; NR];
            let o = (i - i0) * n + j0;
            acc[..w].copy_from_slice(&out[o..o + w]);
            for (p, brow) in panel.chunks_exact(NR).enumerate() {
                let av = a[p * ka + i];
                for t in 0..NR {
                    acc[t] += av * brow[t];
                }
            }
            out[o..o + w].copy_from_slice(&acc[..w]);
            i += 1;
        }
    }
}

/// Reference `a × bᵀ` over a row chunk of `a`: one dot product per output
/// element, `k` ascending.
fn gemm_bt_naive_rows(a: &[f32], b: &[f32], out: &mut [f32], rows: usize, k: usize, nb: usize) {
    for i in 0..rows {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..nb {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = out[i * nb + j];
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            out[i * nb + j] = acc;
        }
    }
}

/// Blocked `a × bᵀ` over a row chunk of `a`: four simultaneous dot products
/// per `a` row, reusing each loaded `a` element across a 4-row `b` tile.
fn gemm_bt_blocked_rows(a: &[f32], b: &[f32], out: &mut [f32], rows: usize, k: usize, nb: usize) {
    let nb_main = nb - nb % MR;
    for i in 0..rows {
        let arow = &a[i * k..(i + 1) * k];
        let mut j = 0;
        while j < nb_main {
            let mut acc = [0.0f32; MR];
            for (t, accv) in acc.iter_mut().enumerate() {
                *accv = out[i * nb + j + t];
            }
            for (p, &av) in arow.iter().enumerate() {
                for (t, accv) in acc.iter_mut().enumerate() {
                    *accv += av * b[(j + t) * k + p];
                }
            }
            out[i * nb + j..i * nb + j + MR].copy_from_slice(&acc);
            j += MR;
        }
        while j < nb {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = out[i * nb + j];
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            out[i * nb + j] = acc;
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(rows: usize, cols: usize, seed: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            ((r * cols + c) as f32).sin() * seed + (r as f32 - c as f32) * 0.01
        })
    }

    /// The kernels under the bitwise contract *in this process*: the
    /// concrete bitwise variants, plus `Auto` unless fast mode makes it
    /// resolve to simd (the unit suite also runs under the CI
    /// `DEEPSEQ_KERNEL=simd` leg).
    fn bitwise_kernels() -> Vec<Kernel> {
        Kernel::ALL
            .into_iter()
            .chain([Kernel::Auto])
            .filter(|k| k.is_bitwise())
            .collect()
    }

    #[test]
    fn all_kernels_agree_bitwise() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (8, 8, 8),
            (17, 33, 9),
            (64, 96, 40),
            (5, 1, 5),
            (1, 12, 1),
        ] {
            let a = filled(m, k, 0.7);
            let b = filled(k, n, -0.4);
            let reference = Kernel::Naive.matmul(&a, &b);
            for kernel in bitwise_kernels() {
                let got = kernel.matmul(&a, &b);
                assert_eq!(
                    got.data(),
                    reference.data(),
                    "{} {m}x{k}x{n}",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        // Big enough to clear PAR_MIN_FLOPS so the pools genuinely fan out.
        let a = filled(96, 40, 0.7);
        let b = filled(40, 48, -0.4);
        let t_b = filled(96, 33, 0.2);
        let bt_b = filled(56, 40, -0.8);
        let serial = Pool::new(1);
        for threads in [2, 4, 7] {
            let pool = Pool::new(threads);
            // Simd belongs here too: fast mode is self-deterministic, so
            // parallel must match serial bitwise for it as well.
            for kernel in Kernel::ALL.into_iter().chain([Kernel::Auto, Kernel::Simd]) {
                assert_eq!(
                    kernel.matmul_on(&pool, &a, &b),
                    kernel.matmul_on(&serial, &a, &b),
                    "matmul {} t{threads}",
                    kernel.name()
                );
                assert_eq!(
                    kernel.t_matmul_on(&pool, &a, &t_b),
                    kernel.t_matmul_on(&serial, &a, &t_b),
                    "t_matmul {} t{threads}",
                    kernel.name()
                );
                assert_eq!(
                    kernel.matmul_t_on(&pool, &a, &bt_b),
                    kernel.matmul_t_on(&serial, &a, &bt_b),
                    "matmul_t {} t{threads}",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn transpose_variants_agree_bitwise() {
        let a = filled(13, 6, 0.3);
        let b = filled(13, 11, -0.9);
        let reference = Kernel::Naive.t_matmul(&a, &b);
        let bt_a = filled(9, 14, 0.5);
        let bt_b = filled(7, 14, 0.2);
        let bt_reference = Kernel::Naive.matmul_t(&bt_a, &bt_b);
        for kernel in bitwise_kernels() {
            assert_eq!(kernel.t_matmul(&a, &b), reference, "{}", kernel.name());
            assert_eq!(
                kernel.matmul_t(&bt_a, &bt_b),
                bt_reference,
                "{}",
                kernel.name()
            );
        }
    }

    #[test]
    fn empty_shapes_are_handled() {
        for kernel in Kernel::ALL.into_iter().chain([Kernel::Auto, Kernel::Simd]) {
            let a = Matrix::zeros(0, 4);
            let b = Matrix::zeros(4, 3);
            assert_eq!(kernel.matmul(&a, &b).shape(), (0, 3));
            let a = Matrix::zeros(3, 0);
            let b = Matrix::zeros(0, 2);
            assert_eq!(kernel.matmul(&a, &b), Matrix::zeros(3, 2));
            assert_eq!(
                kernel.t_matmul(&Matrix::zeros(0, 4), &Matrix::zeros(0, 2)),
                Matrix::zeros(4, 2)
            );
            assert_eq!(
                kernel.matmul_t(&Matrix::zeros(2, 0), &Matrix::zeros(3, 0)),
                Matrix::zeros(2, 3)
            );
        }
    }

    #[test]
    fn fused_matches_unfused_sequence() {
        let x = filled(10, 6, 0.4);
        let w = filled(6, 4, -0.3);
        let h = filled(10, 3, 0.9);
        let u = filled(3, 4, 0.6);
        let bias = filled(1, 4, 0.1);
        // Fused vs unfused is a *same-kernel* identity, so it must hold
        // for simd (and for Auto in fast mode) too.
        for kernel in Kernel::ALL.into_iter().chain([Kernel::Auto, Kernel::Simd]) {
            let mut out = Matrix::default();
            let mut tmp = Matrix::default();
            kernel.matmul_bias_act(
                &x,
                &w,
                Some((&h, &u)),
                Some(&bias),
                Act::Sigmoid,
                &mut out,
                &mut tmp,
            );
            let mut expect = kernel.matmul(&x, &w);
            expect.add_assign(&kernel.matmul(&h, &u));
            expect.add_row_assign(&bias);
            Act::Sigmoid.apply(expect.data_mut());
            assert_eq!(out, expect, "{}", kernel.name());
        }
    }

    #[test]
    fn parse_and_names_roundtrip() {
        for kernel in Kernel::ALL.into_iter().chain([Kernel::Auto, Kernel::Simd]) {
            assert_eq!(Kernel::parse(kernel.name()), Some(kernel));
            assert_eq!(Kernel::parse(&kernel.name().to_uppercase()), Some(kernel));
        }
        assert_eq!(Kernel::parse("simd9000"), None);
    }

    #[test]
    fn bitwise_classification_matches_contract() {
        for kernel in Kernel::ALL {
            assert!(kernel.is_bitwise(), "{}", kernel.name());
        }
        assert!(!Kernel::Simd.is_bitwise());
        // Auto's classification follows the process mode.
        assert_eq!(Kernel::Auto.is_bitwise(), !Kernel::fast_mode());
        // Trace tags are distinct per concrete kernel and fit pack_gemm's
        // four bits.
        let tags: Vec<u8> = Kernel::ALL
            .into_iter()
            .chain([Kernel::Simd])
            .map(|k| k.trace_tag())
            .collect();
        for (i, &t) in tags.iter().enumerate() {
            assert!(t > 0 && t <= 0xF);
            assert!(!tags[..i].contains(&t), "duplicate tag {t}");
        }
    }

    #[test]
    fn concurrent_packed_products_survive_help_stealing() {
        // While a packed product is parked in `Pool::run`, the same thread
        // may help-execute another task that also runs a packed product.
        // The pack scratch must not stay borrowed across the fan-out
        // (regression: `BorrowMutError` at the second borrow).
        use crate::pool::Pool;
        use std::sync::Arc;
        let serial = Pool::new(1);
        let a = filled(64, 128, 0.4);
        let b = filled(128, 256, -0.2);
        let reference = Kernel::Packed.matmul_on(&serial, &a, &b);
        let pool = Arc::new(Pool::new(2));
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let (a, b, reference) = (&a, &b, &reference);
                Box::new(move || {
                    assert_eq!(&Kernel::Packed.matmul_on(&pool, a, b), reference);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(tasks);
    }

    #[test]
    fn auto_resolves_by_shape() {
        // Tiny products stay on the reference loops in either mode.
        assert_eq!(Kernel::Auto.resolve(4, 4, 4), Kernel::Naive);
        if Kernel::fast_mode() {
            // Fast mode splits on the right-hand operand alone — the
            // choice must be independent of `m` so row partitioning at
            // any layer cannot change the bits.
            assert_eq!(Kernel::Auto.resolve(2, 16, 16), Kernel::Simd);
            assert_eq!(Kernel::Auto.resolve(1, 512, 2), Kernel::Simd);
            assert_eq!(Kernel::Auto.resolve(256, 68, 32), Kernel::Simd);
            assert_eq!(Kernel::Auto.resolve(256, 512, 128), Kernel::Simd);
            for (k, n) in [(1, 1), (16, 16), (512, 128)] {
                assert_eq!(
                    Kernel::Auto.resolve(1, k, n),
                    Kernel::Auto.resolve(1000, k, n),
                    "fast-mode dispatch must not depend on m ({k}x{n})"
                );
            }
        } else {
            assert_eq!(Kernel::Auto.resolve(2, 16, 16), Kernel::Naive);
            // Bitwise mode, pre-tuning prior: mid-size products go
            // blocked (even with narrow or single-row outputs);
            // L1-busting B operands go packed. These shapes never run a
            // product in this test binary, so no pinned winner overrides
            // the static heuristic.
            assert_eq!(Kernel::Auto.resolve(1, 512, 2), Kernel::Blocked);
            assert_eq!(Kernel::Auto.resolve(1000, 100, 1), Kernel::Blocked);
            assert_eq!(Kernel::Auto.resolve(256, 68, 32), Kernel::Blocked);
            assert_eq!(Kernel::Auto.resolve(256, 512, 128), Kernel::Packed);
        }
        // Concrete bitwise kernels resolve to themselves regardless of
        // shape; simd hands small-right-hand products to the reference
        // loops (m-independently).
        for kernel in Kernel::ALL {
            assert_eq!(kernel.resolve(1, 1, 1), kernel);
            assert_eq!(kernel.resolve(512, 512, 512), kernel);
        }
        assert_eq!(Kernel::Simd.resolve(4, 4, 4), Kernel::Naive);
        assert_eq!(Kernel::Simd.resolve(4096, 4, 4), Kernel::Naive);
        assert_eq!(Kernel::Simd.resolve(1, 16, 16), Kernel::Simd);
        assert_eq!(Kernel::Simd.resolve(512, 512, 512), Kernel::Simd);
    }

    #[test]
    fn auto_pins_a_tuned_winner_after_trials() {
        // Enough same-shape products to drain every candidate's trials;
        // afterwards resolve must report a concrete pinned kernel (not
        // the static prior by accident — the shape is chosen so any
        // candidate is a legal answer, we only check convergence).
        let a = filled(40, 200, 0.3);
        let b = filled(200, 24, -0.6);
        if Kernel::fast_mode() {
            // Fast mode bypasses trials entirely: Auto delegates to the
            // fused kernel, whose bits differ from naive but match Simd's.
            assert_eq!(Kernel::Auto.resolve(40, 200, 24), Kernel::Simd);
            assert_eq!(Kernel::Auto.matmul(&a, &b), Kernel::Simd.matmul(&a, &b));
            return;
        }
        let reference = Kernel::Naive.matmul(&a, &b);
        for _ in 0..32 {
            assert_eq!(Kernel::Auto.matmul(&a, &b), reference);
        }
        let resolved = Kernel::Auto.resolve(40, 200, 24);
        assert!(
            matches!(resolved, Kernel::Blocked | Kernel::Packed),
            "expected a pinned bitwise kernel, got {}",
            resolved.name()
        );
    }

    #[test]
    fn simd_is_exact_on_identity_products() {
        // a × I touches every simd path (full panels, tail panels, row
        // tails) with arithmetic that is exact under FMA too, so the
        // result must be bitwise-equal to the reference even in fast
        // mode.
        for &(m, k) in &[(9, 12), (16, 16), (3, 40), (33, 7)] {
            let a = filled(m, k, 0.9);
            let eye = Matrix::eye(k);
            assert_eq!(Kernel::Simd.matmul(&a, &eye), a, "{m}x{k}");
        }
    }

    #[test]
    fn activations_apply_expected_maps() {
        let mut v = [-1.0f32, 0.0, 2.0];
        Act::Relu.apply(&mut v);
        assert_eq!(v, [0.0, 0.0, 2.0]);
        let mut v = [0.0f32];
        Act::Sigmoid.apply(&mut v);
        assert!((v[0] - 0.5).abs() < 1e-6);
        let mut v = [0.0f32];
        Act::Tanh.apply(&mut v);
        assert_eq!(v[0], 0.0);
        let mut v = [3.0f32];
        Act::Identity.apply(&mut v);
        assert_eq!(v[0], 3.0);
    }
}
