//! AVX2/FMA micro-kernels — the arithmetic behind [`Kernel::Simd`]
//! (fast mode).
//!
//! Every kernel here accumulates each output element with **fused**
//! multiply-adds over the contraction index in ascending order, starting
//! from the (zeroed) output value. That single design choice buys three
//! properties at once:
//!
//! * **Speed** — one rounding per multiply-add instead of two, and on
//!   AVX2 hardware eight f32 lanes per instruction, which is exactly why
//!   fast mode exists (the bitwise kernels deliberately avoid FMA to stay
//!   0-ULP-equal to the naive reference; see the module docs of
//!   [`crate::kernels`]).
//! * **Self-determinism** — the per-element operation sequence depends
//!   only on the operand shapes, never on row blocking, panel tails,
//!   thread count or tuning state, so simd results are bitwise-identical
//!   across runs and across `DEEPSEQ_THREADS` settings.
//! * **Portability of bits** — `_mm256_fmadd_ps` and scalar
//!   [`f32::mul_add`] are both correctly-rounded IEEE-754 fused
//!   multiply-adds, so the portable fallback below produces **the same
//!   bits** as the AVX2 path. Hosts without AVX2 don't get a different
//!   numerics mode, just a slower one, and narrow panel tails can drop to
//!   the portable loops mid-product without affecting any full panel.
//!
//! What fast mode does *not* promise is bitwise equality with the
//! reference kernels: fusing changes rounding. The divergence is bounded
//! and property-tested in `crates/nn/tests/kernel_numerics.rs` (relative
//! error ≤ 1e-5 against the naive kernel in the backward-error sense,
//! plus a ULP-distance cap on well-conditioned elements); the full
//! contract is documented in docs/ARCHITECTURE.md ("Numerics contract").
//!
//! The kernels consume the same `NR`-wide contraction-major B panels as
//! [`Kernel::Packed`] (`pack_b`/`pack_bt`): `NR` = 8 f32 lanes is exactly
//! one `__m256` vector, so a packed panel row is one aligned-enough
//! (`loadu`) vector load per contraction step.

use super::{MR, NR};

/// True when the running CPU executes the AVX2+FMA paths; false means
/// every product runs the bitwise-identical portable fused loops. Checked
/// per call via [`std::arch::is_x86_feature_detected!`], which caches
/// after the first probe.
#[inline]
pub fn accelerated() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Fused-FMA GEMM compute phase over pre-packed panels (same layout and
/// calling convention as `gemm_packed_rows`): computes `out += a × B`
/// where the panels encode `B` (`k × n`). Expects `a`/`out` to hold
/// exactly `m` rows (the caller may pass a row chunk).
pub(super) fn gemm_fused_rows(
    a: &[f32],
    pack: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let panels = n.div_ceil(NR);
    for jp in 0..panels {
        let j0 = jp * NR;
        let w = NR.min(n - j0);
        let panel = &pack[jp * k * NR..(jp + 1) * k * NR];
        #[cfg(target_arch = "x86_64")]
        if w == NR && accelerated() {
            // Safety: avx2+fma verified; the slice bounds below cover
            // every pointer the kernel dereferences.
            unsafe { avx2::gemm_panel(a, panel, out, m, k, n, j0) };
            continue;
        }
        gemm_panel_portable(a, panel, out, m, k, n, j0, w);
    }
}

/// Fused-FMA `aᵀ × b` over output rows `i0..i1` (columns of `a`), against
/// `pack_b(b)` panels — the fast-mode analog of `t_gemm_packed_rows`,
/// with the identical signature.
#[allow(clippy::too_many_arguments)]
pub(super) fn t_gemm_fused_rows(
    a: &[f32],
    pack: &[f32],
    out: &mut [f32],
    m: usize,
    ka: usize,
    n: usize,
    i0: usize,
    i1: usize,
) {
    let panels = n.div_ceil(NR);
    for jp in 0..panels {
        let j0 = jp * NR;
        let w = NR.min(n - j0);
        let panel = &pack[jp * m * NR..(jp + 1) * m * NR];
        #[cfg(target_arch = "x86_64")]
        if w == NR && accelerated() {
            // Safety: avx2+fma verified; slice bounds cover every access.
            unsafe { avx2::t_gemm_panel(a, panel, out, m, ka, n, i0, i1, j0) };
            continue;
        }
        t_gemm_panel_portable(a, panel, out, ka, n, i0, i1, j0, w);
    }
}

/// Portable fused panel kernel: scalar [`f32::mul_add`] in the exact
/// per-element order of the AVX2 path, so the bits match. Handles partial
/// panels (`w < NR`); padded lanes accumulate zeros and are discarded.
#[allow(clippy::too_many_arguments)]
fn gemm_panel_portable(
    a: &[f32],
    panel: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    j0: usize,
    w: usize,
) {
    let m_main = m - m % MR;
    let mut i = 0;
    while i < m_main {
        let mut acc = [[0.0f32; NR]; MR];
        for (r, accr) in acc.iter_mut().enumerate() {
            accr[..w].copy_from_slice(&out[(i + r) * n + j0..(i + r) * n + j0 + w]);
        }
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let a2 = &a[(i + 2) * k..(i + 3) * k];
        let a3 = &a[(i + 3) * k..(i + 4) * k];
        let [mut c0, mut c1, mut c2, mut c3] = acc;
        for ((((&av0, &av1), &av2), &av3), brow) in a0
            .iter()
            .zip(a1)
            .zip(a2)
            .zip(a3)
            .zip(panel.chunks_exact(NR))
        {
            for t in 0..NR {
                c0[t] = av0.mul_add(brow[t], c0[t]);
                c1[t] = av1.mul_add(brow[t], c1[t]);
                c2[t] = av2.mul_add(brow[t], c2[t]);
                c3[t] = av3.mul_add(brow[t], c3[t]);
            }
        }
        for (r, accr) in [c0, c1, c2, c3].iter().enumerate() {
            out[(i + r) * n + j0..(i + r) * n + j0 + w].copy_from_slice(&accr[..w]);
        }
        i += MR;
    }
    while i < m {
        let mut acc = [0.0f32; NR];
        acc[..w].copy_from_slice(&out[i * n + j0..i * n + j0 + w]);
        let arow = &a[i * k..(i + 1) * k];
        for (&av, brow) in arow.iter().zip(panel.chunks_exact(NR)) {
            for t in 0..NR {
                acc[t] = av.mul_add(brow[t], acc[t]);
            }
        }
        out[i * n + j0..i * n + j0 + w].copy_from_slice(&acc[..w]);
        i += 1;
    }
}

/// Portable fused transpose-product panel kernel; same bit-for-bit
/// contract with its AVX2 twin as [`gemm_panel_portable`].
#[allow(clippy::too_many_arguments)]
fn t_gemm_panel_portable(
    a: &[f32],
    panel: &[f32],
    out: &mut [f32],
    ka: usize,
    n: usize,
    i0: usize,
    i1: usize,
    j0: usize,
    w: usize,
) {
    let rows = i1 - i0;
    let i_main = i0 + (rows - rows % MR);
    let mut i = i0;
    while i < i_main {
        let mut acc = [[0.0f32; NR]; MR];
        for (r, accr) in acc.iter_mut().enumerate() {
            let o = (i - i0 + r) * n + j0;
            accr[..w].copy_from_slice(&out[o..o + w]);
        }
        let [mut c0, mut c1, mut c2, mut c3] = acc;
        for (p, brow) in panel.chunks_exact(NR).enumerate() {
            let acol: &[f32; MR] = a[p * ka + i..].first_chunk().expect("i + MR <= ka");
            for t in 0..NR {
                c0[t] = acol[0].mul_add(brow[t], c0[t]);
                c1[t] = acol[1].mul_add(brow[t], c1[t]);
                c2[t] = acol[2].mul_add(brow[t], c2[t]);
                c3[t] = acol[3].mul_add(brow[t], c3[t]);
            }
        }
        for (r, accr) in [c0, c1, c2, c3].iter().enumerate() {
            let o = (i - i0 + r) * n + j0;
            out[o..o + w].copy_from_slice(&accr[..w]);
        }
        i += MR;
    }
    while i < i1 {
        let mut acc = [0.0f32; NR];
        let o = (i - i0) * n + j0;
        acc[..w].copy_from_slice(&out[o..o + w]);
        for (p, brow) in panel.chunks_exact(NR).enumerate() {
            let av = a[p * ka + i];
            for t in 0..NR {
                acc[t] = av.mul_add(brow[t], acc[t]);
            }
        }
        out[o..o + w].copy_from_slice(&acc[..w]);
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::NR;
    use std::arch::x86_64::*;

    /// AVX2/FMA micro-kernel over one full-width (`w == NR`) packed
    /// panel: 8 output rows per block (amortizing each panel-row load
    /// over 8 FMAs), then 4-row and single-row tails. Per output element
    /// the accumulation is one fused multiply-add per contraction step,
    /// ascending — identical to the portable fallback's sequence.
    ///
    /// # Safety
    /// Caller must have verified `avx2` and `fma` CPU support, and the
    /// slices must satisfy `a.len() >= m*k`, `panel.len() >= k*NR`,
    /// `out.len() >= m*n`, `j0 + NR <= n`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn gemm_panel(
        a: &[f32],
        panel: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        j0: usize,
    ) {
        debug_assert!(a.len() >= m * k && panel.len() >= k * NR);
        debug_assert!(j0 + NR <= n && out.len() >= m * n);
        let ap = a.as_ptr();
        let pp = panel.as_ptr();
        let op = out.as_mut_ptr();
        let mut i = 0usize;
        while i + 8 <= m {
            unsafe {
                let mut c0 = _mm256_loadu_ps(op.add(i * n + j0));
                let mut c1 = _mm256_loadu_ps(op.add((i + 1) * n + j0));
                let mut c2 = _mm256_loadu_ps(op.add((i + 2) * n + j0));
                let mut c3 = _mm256_loadu_ps(op.add((i + 3) * n + j0));
                let mut c4 = _mm256_loadu_ps(op.add((i + 4) * n + j0));
                let mut c5 = _mm256_loadu_ps(op.add((i + 5) * n + j0));
                let mut c6 = _mm256_loadu_ps(op.add((i + 6) * n + j0));
                let mut c7 = _mm256_loadu_ps(op.add((i + 7) * n + j0));
                for p in 0..k {
                    let b = _mm256_loadu_ps(pp.add(p * NR));
                    c0 = _mm256_fmadd_ps(_mm256_set1_ps(*ap.add(i * k + p)), b, c0);
                    c1 = _mm256_fmadd_ps(_mm256_set1_ps(*ap.add((i + 1) * k + p)), b, c1);
                    c2 = _mm256_fmadd_ps(_mm256_set1_ps(*ap.add((i + 2) * k + p)), b, c2);
                    c3 = _mm256_fmadd_ps(_mm256_set1_ps(*ap.add((i + 3) * k + p)), b, c3);
                    c4 = _mm256_fmadd_ps(_mm256_set1_ps(*ap.add((i + 4) * k + p)), b, c4);
                    c5 = _mm256_fmadd_ps(_mm256_set1_ps(*ap.add((i + 5) * k + p)), b, c5);
                    c6 = _mm256_fmadd_ps(_mm256_set1_ps(*ap.add((i + 6) * k + p)), b, c6);
                    c7 = _mm256_fmadd_ps(_mm256_set1_ps(*ap.add((i + 7) * k + p)), b, c7);
                }
                _mm256_storeu_ps(op.add(i * n + j0), c0);
                _mm256_storeu_ps(op.add((i + 1) * n + j0), c1);
                _mm256_storeu_ps(op.add((i + 2) * n + j0), c2);
                _mm256_storeu_ps(op.add((i + 3) * n + j0), c3);
                _mm256_storeu_ps(op.add((i + 4) * n + j0), c4);
                _mm256_storeu_ps(op.add((i + 5) * n + j0), c5);
                _mm256_storeu_ps(op.add((i + 6) * n + j0), c6);
                _mm256_storeu_ps(op.add((i + 7) * n + j0), c7);
            }
            i += 8;
        }
        while i + 4 <= m {
            unsafe {
                let mut c0 = _mm256_loadu_ps(op.add(i * n + j0));
                let mut c1 = _mm256_loadu_ps(op.add((i + 1) * n + j0));
                let mut c2 = _mm256_loadu_ps(op.add((i + 2) * n + j0));
                let mut c3 = _mm256_loadu_ps(op.add((i + 3) * n + j0));
                for p in 0..k {
                    let b = _mm256_loadu_ps(pp.add(p * NR));
                    c0 = _mm256_fmadd_ps(_mm256_set1_ps(*ap.add(i * k + p)), b, c0);
                    c1 = _mm256_fmadd_ps(_mm256_set1_ps(*ap.add((i + 1) * k + p)), b, c1);
                    c2 = _mm256_fmadd_ps(_mm256_set1_ps(*ap.add((i + 2) * k + p)), b, c2);
                    c3 = _mm256_fmadd_ps(_mm256_set1_ps(*ap.add((i + 3) * k + p)), b, c3);
                }
                _mm256_storeu_ps(op.add(i * n + j0), c0);
                _mm256_storeu_ps(op.add((i + 1) * n + j0), c1);
                _mm256_storeu_ps(op.add((i + 2) * n + j0), c2);
                _mm256_storeu_ps(op.add((i + 3) * n + j0), c3);
            }
            i += 4;
        }
        while i < m {
            unsafe {
                let mut c0 = _mm256_loadu_ps(op.add(i * n + j0));
                for p in 0..k {
                    let b = _mm256_loadu_ps(pp.add(p * NR));
                    c0 = _mm256_fmadd_ps(_mm256_set1_ps(*ap.add(i * k + p)), b, c0);
                }
                _mm256_storeu_ps(op.add(i * n + j0), c0);
            }
            i += 1;
        }
    }

    /// AVX2/FMA transpose-product micro-kernel over one full-width packed
    /// panel: output rows `i0..i1` are columns of `a`, read contiguously
    /// (`a[p*ka + i .. i+4]`) per contraction step.
    ///
    /// # Safety
    /// Caller must have verified `avx2` and `fma` CPU support, and:
    /// `a.len() >= m*ka`, `panel.len() >= m*NR`, `out.len() >=
    /// (i1-i0)*n`, `i1 <= ka`, `j0 + NR <= n`.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn t_gemm_panel(
        a: &[f32],
        panel: &[f32],
        out: &mut [f32],
        m: usize,
        ka: usize,
        n: usize,
        i0: usize,
        i1: usize,
        j0: usize,
    ) {
        debug_assert!(a.len() >= m * ka && panel.len() >= m * NR);
        debug_assert!(i1 <= ka && j0 + NR <= n && out.len() >= (i1 - i0) * n);
        let ap = a.as_ptr();
        let pp = panel.as_ptr();
        let op = out.as_mut_ptr();
        let mut i = i0;
        while i + 4 <= i1 {
            unsafe {
                let o = (i - i0) * n + j0;
                let mut c0 = _mm256_loadu_ps(op.add(o));
                let mut c1 = _mm256_loadu_ps(op.add(o + n));
                let mut c2 = _mm256_loadu_ps(op.add(o + 2 * n));
                let mut c3 = _mm256_loadu_ps(op.add(o + 3 * n));
                for p in 0..m {
                    let b = _mm256_loadu_ps(pp.add(p * NR));
                    let acol = ap.add(p * ka + i);
                    c0 = _mm256_fmadd_ps(_mm256_set1_ps(*acol), b, c0);
                    c1 = _mm256_fmadd_ps(_mm256_set1_ps(*acol.add(1)), b, c1);
                    c2 = _mm256_fmadd_ps(_mm256_set1_ps(*acol.add(2)), b, c2);
                    c3 = _mm256_fmadd_ps(_mm256_set1_ps(*acol.add(3)), b, c3);
                }
                _mm256_storeu_ps(op.add(o), c0);
                _mm256_storeu_ps(op.add(o + n), c1);
                _mm256_storeu_ps(op.add(o + 2 * n), c2);
                _mm256_storeu_ps(op.add(o + 3 * n), c3);
            }
            i += 4;
        }
        while i < i1 {
            unsafe {
                let o = (i - i0) * n + j0;
                let mut c0 = _mm256_loadu_ps(op.add(o));
                for p in 0..m {
                    let b = _mm256_loadu_ps(pp.add(p * NR));
                    c0 = _mm256_fmadd_ps(_mm256_set1_ps(*ap.add(p * ka + i)), b, c0);
                }
                _mm256_storeu_ps(op.add(o), c0);
            }
            i += 1;
        }
    }
}
