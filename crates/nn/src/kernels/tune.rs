//! Per-shape autotuning behind [`Kernel::Auto`]'s resolve step.
//!
//! The static shape heuristic (tiny → naive, L1-busting → packed, rest →
//! blocked) is a decent prior but wrong at the margins, and the best
//! `k`-panel height for the blocked kernel depends on the operand shape.
//! Instead of guessing, `Auto` runs an interleaved A/B trial on the first
//! few products of each exact `(family, m, k, n)` shape: every candidate
//! `(kernel, kc)` configuration is timed [`TRIALS`] times round-robin,
//! then the fastest observed configuration is **pinned** and used for
//! every later product of that shape — which is exactly the serving
//! access pattern (the same model shapes recur per request).
//!
//! Every candidate in bitwise mode is a bitwise kernel, and in fast mode
//! `Auto` resolves straight to [`Kernel::Simd`] without trials, so tuning
//! can never mix arithmetic modes within a process: which candidate runs
//! affects only *when* the answer arrives, never its bits.
//!
//! Bookkeeping costs one mutex-protected hash lookup per tuned product
//! (products under the tiny-shape cutoff never reach the tuner), and two
//! `Instant` reads per *trial* product only; pinned shapes skip the
//! clock entirely. The table is capped at [`MAX_SHAPES`] distinct shapes
//! — beyond that, new shapes fall back to the static heuristic.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use super::{Kernel, KC};

/// Timed trials per candidate before a shape is pinned.
const TRIALS: u32 = 2;

/// Distinct `(family, m, k, n)` shapes tracked before falling back to the
/// static heuristic (bounds table memory under adversarial shape churn).
const MAX_SHAPES: usize = 1024;

/// Which product family a shape belongs to — `a×b`, `aᵀ×b` and `a×bᵀ`
/// have different memory behavior for the same dimension triple, so they
/// tune independently.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub(super) enum Family {
    /// Plain `a × b` (also the fused entry points' products).
    Gemm,
    /// `aᵀ × b` (tape backward pass).
    TGemm,
    /// `a × bᵀ` (tape backward pass).
    BtGemm,
}

/// One tunable execution configuration: a concrete bitwise kernel plus
/// the `k`-panel height for the blocked kernel (0 when unused).
#[derive(Clone, Copy)]
pub(super) struct Candidate {
    pub kernel: Kernel,
    pub kc: usize,
}

/// The static per-shape `k`-panel height for the blocked kernel: size the
/// `kc × n` panel of `b` to roughly 32 KiB of L1, clamped to sane tiles.
pub(super) fn kc_for(k: usize, n: usize) -> usize {
    ((32 * 1024 / 4) / n.max(1))
        .clamp(KC / 2, KC * 4)
        .min(k.max(1))
}

/// The pre-tuning prior: the original shape heuristic (packed once the
/// right-hand operand outgrows L1, blocked otherwise). Also the terminal
/// answer when the shape table is full. `k` is the contraction dimension.
fn static_candidate(k: usize, n: usize) -> Candidate {
    if k.saturating_mul(n) >= 32_768 {
        Candidate {
            kernel: Kernel::Packed,
            kc: 0,
        }
    } else {
        Candidate {
            kernel: Kernel::Blocked,
            kc: kc_for(k, n),
        }
    }
}

fn candidates(family: Family, k: usize) -> Vec<Candidate> {
    match family {
        // The bt kernels stream the whole contraction per output element;
        // kc does not apply.
        Family::BtGemm => vec![
            Candidate {
                kernel: Kernel::Blocked,
                kc: 0,
            },
            Candidate {
                kernel: Kernel::Packed,
                kc: 0,
            },
        ],
        Family::Gemm | Family::TGemm => {
            let mut out: Vec<Candidate> = [KC / 2, KC, KC * 2]
                .into_iter()
                .filter(|&kc| kc < k)
                .map(|kc| Candidate {
                    kernel: Kernel::Blocked,
                    kc,
                })
                .collect();
            // The single-panel (or largest-tile) configuration.
            out.push(Candidate {
                kernel: Kernel::Blocked,
                kc: k.clamp(1, KC * 4),
            });
            out.push(Candidate {
                kernel: Kernel::Packed,
                kc: 0,
            });
            out
        }
    }
}

struct State {
    candidates: Vec<Candidate>,
    /// Best observed wall time per candidate; `u64::MAX` until finished
    /// at least once.
    best_ns: Vec<u64>,
    /// Times each candidate was handed out for a trial.
    handed: Vec<u32>,
    pinned: Option<usize>,
}

type Key = (Family, usize, usize, usize);

/// An in-flight timed trial; report it back via [`finish`] right after
/// the product completes.
pub(super) struct Trial {
    key: Key,
    idx: usize,
    start: Instant,
}

fn table() -> &'static Mutex<HashMap<Key, State>> {
    static TABLE: OnceLock<Mutex<HashMap<Key, State>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The configuration to run for one product of this shape: the pinned
/// winner once tuning converged, otherwise the least-tried candidate
/// together with a [`Trial`] to time it under.
pub(super) fn pick(family: Family, m: usize, k: usize, n: usize) -> (Candidate, Option<Trial>) {
    let key = (family, m, k, n);
    let mut table = table().lock().unwrap_or_else(|e| e.into_inner());
    if table.len() >= MAX_SHAPES && !table.contains_key(&key) {
        return (static_candidate(k, n), None);
    }
    let state = table.entry(key).or_insert_with(|| {
        let candidates = candidates(family, k);
        let len = candidates.len();
        State {
            candidates,
            best_ns: vec![u64::MAX; len],
            handed: vec![0; len],
            pinned: None,
        }
    });
    if let Some(p) = state.pinned {
        return (state.candidates[p], None);
    }
    let idx = state
        .handed
        .iter()
        .enumerate()
        .min_by_key(|&(_, &h)| h)
        .map(|(i, _)| i)
        .unwrap_or(0);
    state.handed[idx] += 1;
    (
        state.candidates[idx],
        Some(Trial {
            key,
            idx,
            start: Instant::now(),
        }),
    )
}

/// Record a finished trial; pins the shape to its fastest observed
/// candidate once every candidate has [`TRIALS`] completed timings.
pub(super) fn finish(trial: Trial) {
    let ns = trial.start.elapsed().as_nanos() as u64;
    let mut table = table().lock().unwrap_or_else(|e| e.into_inner());
    let Some(state) = table.get_mut(&trial.key) else {
        return;
    };
    state.best_ns[trial.idx] = state.best_ns[trial.idx].min(ns);
    if state.pinned.is_none()
        && state.handed.iter().all(|&h| h >= TRIALS)
        && state.best_ns.iter().all(|&b| b < u64::MAX)
    {
        state.pinned = state
            .best_ns
            .iter()
            .enumerate()
            .min_by_key(|&(_, &b)| b)
            .map(|(i, _)| i);
    }
}

/// The pinned winner for a shape, if tuning has converged on one.
pub(super) fn pinned(family: Family, m: usize, k: usize, n: usize) -> Option<Candidate> {
    let table = table().lock().unwrap_or_else(|e| e.into_inner());
    let state = table.get(&(family, m, k, n))?;
    state.pinned.map(|p| state.candidates[p])
}
