//! Minimal tensor + reverse-mode autograd engine for the DeepSeq
//! reproduction.
//!
//! The original DeepSeq implementation uses PyTorch Geometric; nothing
//! comparable exists offline in Rust, so this crate is the substrate built in
//! its place. It provides exactly what the paper's model needs, and nothing
//! more:
//!
//! * [`Matrix`] — dense row-major `f32` matrices;
//! * [`kernels`] — cache-blocked GEMM variants behind the [`Kernel`]
//!   dispatch enum (selectable via `DEEPSEQ_KERNEL`), including the fused
//!   gate op `act(x·W + h·U + b)` used by both training and serving, plus
//!   the opt-in AVX2/FMA fast mode (`DEEPSEQ_KERNEL=simd`) governed by the
//!   two-mode numerics contract documented in [`kernels`] and tested with
//!   the [`numerics`] comparison primitives;
//! * [`pool`] — the persistent worker [`Pool`] (sized by `DEEPSEQ_THREADS`)
//!   that large products, the serve path and the data-parallel training
//!   loop fan out across, with results bitwise-identical at any thread
//!   count;
//! * [`fault`] — opt-in (`DEEPSEQ_FAULT`) deterministic fault injection
//!   behind the same single-atomic disarmed fast path as [`trace`]: named
//!   points (checkpoint corruption, task panics, slow stages, cache
//!   evictions, socket-write failures, dropped replies) with a seeded,
//!   thread-stable PRNG so every recovery path is exercisable in CI;
//! * [`trace`] — opt-in (`DEEPSEQ_TRACE`) span recording behind a single
//!   atomic check: per-stage timings from the HTTP edge down to GEMM
//!   dispatch, exported as span trees, chrome://tracing JSON and the
//!   `deepseq_stage_seconds` metrics;
//! * [`Tape`] — a define-by-run reverse-mode autograd tape with the segment
//!   ops (gather / segment-softmax / segment-sum) that make levelized
//!   "topological batching" over circuit graphs efficient;
//! * [`layers`] — [`Linear`], 3-layer [`Mlp`] regressor heads, [`GruCell`]
//!   (the paper's Combine function, Eq. 8) and [`AdditiveAttention`]
//!   (the scoring used by Eq. 5/6);
//! * [`Adam`] — the optimizer used throughout the paper (lr `1e-4`);
//! * [`Params`] / [`GradStore`] — named parameter store with text and
//!   binary checkpoint formats (no serialization dependencies); the
//!   gradient store is dense and id-ordered, so reductions over it are
//!   deterministic — the primitive behind bitwise-reproducible
//!   data-parallel training.
//!
//! # Example: one training step
//!
//! ```
//! use deepseq_nn::{Adam, Matrix, Mlp, Params, Tape};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut params = Params::new();
//! let head = Mlp::new(&mut params, "head", &[4, 8, 1], &mut rng);
//! let mut opt = Adam::new(1e-2);
//!
//! let x = Matrix::full(3, 4, 0.5);
//! let target = Matrix::full(3, 1, 0.25);
//! let mut tape = Tape::new();
//! let xv = tape.input(x);
//! let pred = head.forward(&mut tape, &params, xv);
//! let loss = tape.l1_loss(pred, &target);
//! let grads = tape.backward(loss);
//! opt.step(&mut params, &grads);
//! assert!(tape.value(loss).get(0, 0) >= 0.0);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod fault;
pub mod kernels;
pub mod layers;
pub mod matrix;
pub mod numerics;
pub mod optim;
pub mod params;
pub mod pool;
pub mod tape;
pub mod trace;

pub use config::{report_warning, warning_count, warnings};
pub use fault::{FaultPoint, FaultSpec};
pub use kernels::{simd_accelerated, Act, Kernel};
pub use layers::{AdditiveAttention, GruCell, Linear, Mlp};
pub use matrix::Matrix;
pub use optim::Adam;
pub use params::{
    append_crc_trailer, crc32, verify_crc_trailer, write_atomic, BinReader, CheckpointMap,
    GradStore, ParamId, Params, ParamsError,
};
pub use pool::{Pool, PoolStats};
pub use tape::{Tape, VarId};
pub use trace::{SpanKind, SpanRecord};
