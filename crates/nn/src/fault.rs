//! Deterministic fault injection for exercising recovery paths.
//!
//! Production serving has failure modes that unit tests never reach:
//! a request task panics mid-forward, a reply channel is dropped, a
//! checkpoint arrives bit-flipped, a socket write fails halfway, the
//! cache evicts an entry between probe and use. This module lets tests
//! and CI *inject* those failures on purpose, at named points, with a
//! seeded PRNG so a failing run is reproducible bit-for-bit.
//!
//! Arming is environment-driven:
//!
//! ```text
//! DEEPSEQ_FAULT=<point>[@<stage>]:<rate>[:<seed>]
//! ```
//!
//! e.g. `DEEPSEQ_FAULT=task_panic:0.3:42` injects a panic into 30% of
//! request tasks, decided by a PRNG seeded from `42` and the thread's
//! stable ordinal. `slow_stage` takes a stage qualifier
//! (`slow_stage@forward:1.0`) and a fixed delay instead of an error.
//!
//! Like [`crate::trace`], the disarmed fast path is a single relaxed
//! atomic load — no locks, no thread-locals, no clock reads — and the
//! layer is bitwise-neutral to every computation when disarmed, so the
//! determinism suites hold with the module compiled in.
//!
//! Each injection increments a per-point counter exported by the serve
//! crate as `deepseq_faults_injected_total{point=...}`.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// A named place in the stack where a failure can be injected.
///
/// The discriminants are stable indices into [`FaultPoint::ALL`]; new
/// points append at the end.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FaultPoint {
    /// Corrupt checkpoint bytes as they are read (`Params::load_binary`).
    CheckpointRead = 0,
    /// Panic inside a request's compute task.
    TaskPanic = 1,
    /// Sleep inside a pipeline stage (qualified by a stage name).
    SlowStage = 2,
    /// Treat an embedding-cache probe as a miss and drop the entry.
    CacheEvict = 3,
    /// Fail the socket write of a response.
    SocketWrite = 4,
    /// Drop the engine's reply sender without sending.
    EngineReplyDrop = 5,
}

impl FaultPoint {
    /// Every point, in discriminant order.
    pub const ALL: [FaultPoint; 6] = [
        FaultPoint::CheckpointRead,
        FaultPoint::TaskPanic,
        FaultPoint::SlowStage,
        FaultPoint::CacheEvict,
        FaultPoint::SocketWrite,
        FaultPoint::EngineReplyDrop,
    ];

    /// Stable name used in `DEEPSEQ_FAULT` specs and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::CheckpointRead => "checkpoint_read",
            FaultPoint::TaskPanic => "task_panic",
            FaultPoint::SlowStage => "slow_stage",
            FaultPoint::CacheEvict => "cache_evict",
            FaultPoint::SocketWrite => "socket_write",
            FaultPoint::EngineReplyDrop => "engine_reply_drop",
        }
    }

    /// Index into [`FaultPoint::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }

    fn from_name(name: &str) -> Option<FaultPoint> {
        FaultPoint::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// A parsed, armed fault specification.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// Which point fires.
    pub point: FaultPoint,
    /// Stage qualifier for [`FaultPoint::SlowStage`] (`slow_stage@forward`);
    /// `None` matches every stage.
    pub stage: Option<String>,
    /// Probability in `[0, 1]` that a visit to the point injects.
    pub rate: f64,
    /// PRNG seed; combined with a stable per-thread ordinal so decisions
    /// are reproducible run-to-run even across thread interleavings.
    pub seed: u64,
}

impl FaultSpec {
    /// Parses `point[@stage]:rate[:seed]`.
    pub fn parse(spec: &str) -> Result<FaultSpec, String> {
        let mut parts = spec.split(':');
        let head = parts.next().unwrap_or_default();
        let (name, stage) = match head.split_once('@') {
            Some((name, stage)) if !stage.is_empty() => (name, Some(stage.to_string())),
            Some((name, _)) => (name, None),
            None => (head, None),
        };
        let point = FaultPoint::from_name(name).ok_or_else(|| {
            let known: Vec<&str> = FaultPoint::ALL.iter().map(|p| p.name()).collect();
            format!("unknown fault point `{name}` (known: {})", known.join(", "))
        })?;
        let rate: f64 = match parts.next() {
            Some(rate) => rate
                .parse()
                .map_err(|_| format!("unparseable fault rate `{rate}`"))?,
            None => 1.0,
        };
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("fault rate {rate} outside [0, 1]"));
        }
        let seed: u64 = match parts.next() {
            Some(seed) => seed
                .parse()
                .map_err(|_| format!("unparseable fault seed `{seed}`"))?,
            None => 0,
        };
        if let Some(extra) = parts.next() {
            return Err(format!("trailing fault spec field `{extra}`"));
        }
        Ok(FaultSpec {
            point,
            stage,
            rate,
            seed,
        })
    }
}

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

/// Tri-state arming flag: the only thing the disarmed hot path touches.
static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// The armed spec; consulted only when [`STATE`] is `STATE_ON`.
static SPEC: Mutex<Option<FaultSpec>> = Mutex::new(None);

/// Per-point injection counters (indexed by [`FaultPoint::index`]).
static INJECTED: [AtomicU64; FaultPoint::ALL.len()] = {
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);
    [ZERO; FaultPoint::ALL.len()]
};

/// Monotonic thread-ordinal source for per-thread PRNG streams.
static NEXT_THREAD_ORDINAL: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's PRNG stream as `(spec seed it derives from, state)`.
    /// Re-arming with a different seed restarts the stream.
    static RNG: Cell<Option<(u64, u64)>> = const { Cell::new(None) };
    static THREAD_ORDINAL: Cell<u64> = const { Cell::new(0) };
}

#[cold]
fn init_slow() -> bool {
    let spec = std::env::var("DEEPSEQ_FAULT")
        .ok()
        .filter(|raw| !raw.is_empty())
        .map(|raw| match FaultSpec::parse(&raw) {
            Ok(spec) => spec,
            Err(why) => {
                crate::config::report_warning(format!("ignoring DEEPSEQ_FAULT=`{raw}`: {why}"));
                // A malformed spec must not half-arm the layer.
                FaultSpec {
                    point: FaultPoint::TaskPanic,
                    stage: None,
                    rate: 0.0,
                    seed: 0,
                }
            }
        })
        .filter(|spec| spec.rate > 0.0);
    let on = spec.is_some();
    *SPEC.lock().unwrap_or_else(|e| e.into_inner()) = spec;
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Whether any fault is armed. One relaxed atomic load when resolved.
#[inline]
pub fn armed() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_slow(),
    }
}

/// Arms `spec` (or disarms with `None`) regardless of the environment —
/// the test hook. Resets nothing else: counters keep accumulating.
pub fn set_armed(spec: Option<FaultSpec>) {
    let on = spec.as_ref().is_some_and(|s| s.rate > 0.0);
    *SPEC.lock().unwrap_or_else(|e| e.into_inner()) = spec.filter(|s| s.rate > 0.0);
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// splitmix64 — tiny, seedable, and plenty for injection decisions.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Draws a uniform `[0, 1)` sample from this thread's stream for `seed`.
fn thread_sample(seed: u64) -> f64 {
    let ordinal = THREAD_ORDINAL.with(|cell| {
        if cell.get() == 0 {
            cell.set(NEXT_THREAD_ORDINAL.fetch_add(1, Ordering::Relaxed));
        }
        cell.get()
    });
    RNG.with(|cell| {
        let mut state = match cell.get() {
            Some((tag, state)) if tag == seed => state,
            // First draw under this seed on this thread: derive a stream
            // from (seed, ordinal) so each thread is independent but
            // reproducible.
            _ => seed ^ ordinal.wrapping_mul(0xa076_1d64_78bd_642f),
        };
        let word = splitmix64(&mut state);
        cell.set(Some((seed, state)));
        (word >> 11) as f64 / (1u64 << 53) as f64
    })
}

/// Decides whether the armed fault fires at `point` (ignoring any stage
/// qualifier) and counts the injection if so. Disarmed cost: one load.
#[inline]
pub fn should_inject(point: FaultPoint) -> bool {
    if !armed() {
        return false;
    }
    should_inject_slow(point, None).is_some()
}

/// Stage-qualified variant for [`FaultPoint::SlowStage`]: returns the
/// injected delay when the fault fires for `stage`.
#[inline]
pub fn slow_stage_delay(stage: &str) -> Option<Duration> {
    if !armed() {
        return None;
    }
    should_inject_slow(FaultPoint::SlowStage, Some(stage))
}

#[cold]
fn should_inject_slow(point: FaultPoint, stage: Option<&str>) -> Option<Duration> {
    let (rate, seed) = {
        let guard = SPEC.lock().unwrap_or_else(|e| e.into_inner());
        let spec = guard.as_ref()?;
        if spec.point != point {
            return None;
        }
        if let (Some(want), Some(at)) = (spec.stage.as_deref(), stage) {
            if want != at {
                return None;
            }
        }
        (spec.rate, spec.seed)
    };
    if rate < 1.0 && thread_sample(seed) >= rate {
        return None;
    }
    INJECTED[point.index()].fetch_add(1, Ordering::Relaxed);
    // A fixed, short delay: long enough to widen race windows and show
    // up in latency percentiles, short enough for CI.
    Some(Duration::from_millis(25))
}

/// Total injections at `point` since process start.
pub fn injected_count(point: FaultPoint) -> u64 {
    INJECTED[point.index()].load(Ordering::Relaxed)
}

/// `(name, count)` for every point — the `/metrics` export.
pub fn injected_counts() -> Vec<(&'static str, u64)> {
    FaultPoint::ALL
        .iter()
        .map(|&p| (p.name(), injected_count(p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The armed spec is process-global; tests that touch it serialize.
    static LOCK: Mutex<()> = Mutex::new(());

    fn spec(point: FaultPoint, rate: f64, seed: u64) -> FaultSpec {
        FaultSpec {
            point,
            stage: None,
            rate,
            seed,
        }
    }

    #[test]
    fn parse_full_spec() {
        assert_eq!(
            FaultSpec::parse("task_panic:0.25:7").unwrap(),
            spec(FaultPoint::TaskPanic, 0.25, 7)
        );
    }

    #[test]
    fn parse_defaults_rate_and_seed() {
        assert_eq!(
            FaultSpec::parse("cache_evict").unwrap(),
            spec(FaultPoint::CacheEvict, 1.0, 0)
        );
        assert_eq!(
            FaultSpec::parse("socket_write:0.5").unwrap(),
            spec(FaultPoint::SocketWrite, 0.5, 0)
        );
    }

    #[test]
    fn parse_stage_qualifier() {
        let parsed = FaultSpec::parse("slow_stage@forward:1:3").unwrap();
        assert_eq!(parsed.point, FaultPoint::SlowStage);
        assert_eq!(parsed.stage.as_deref(), Some("forward"));
        assert_eq!(parsed.rate, 1.0);
        assert_eq!(parsed.seed, 3);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultSpec::parse("no_such_point:1").is_err());
        assert!(FaultSpec::parse("task_panic:nan-ish").is_err());
        assert!(FaultSpec::parse("task_panic:2.0").is_err());
        assert!(FaultSpec::parse("task_panic:-0.1").is_err());
        assert!(FaultSpec::parse("task_panic:1:0:extra").is_err());
    }

    #[test]
    fn disarmed_injects_nothing() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_armed(None);
        for point in FaultPoint::ALL {
            assert!(!should_inject(point));
        }
        assert!(slow_stage_delay("forward").is_none());
    }

    #[test]
    fn rate_one_always_fires_and_counts() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_armed(Some(spec(FaultPoint::CacheEvict, 1.0, 1)));
        let before = injected_count(FaultPoint::CacheEvict);
        for _ in 0..10 {
            assert!(should_inject(FaultPoint::CacheEvict));
        }
        assert_eq!(injected_count(FaultPoint::CacheEvict), before + 10);
        // Other points stay quiet.
        assert!(!should_inject(FaultPoint::TaskPanic));
        set_armed(None);
    }

    #[test]
    fn fractional_rate_is_reproducible_per_seed() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let draw = |seed: u64| -> Vec<bool> {
            set_armed(Some(spec(FaultPoint::TaskPanic, 0.5, seed)));
            (0..64)
                .map(|_| should_inject(FaultPoint::TaskPanic))
                .collect()
        };
        let a1 = draw(11);
        let b = draw(12);
        let a2 = draw(11);
        assert_eq!(a1, a2, "same seed must reproduce the same decisions");
        assert_ne!(a1, b, "different seeds should differ");
        let fired = a1.iter().filter(|&&f| f).count();
        assert!((8..=56).contains(&fired), "rate 0.5 fired {fired}/64");
        set_armed(None);
    }

    #[test]
    fn stage_qualifier_gates_slow_stage() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_armed(Some(FaultSpec {
            point: FaultPoint::SlowStage,
            stage: Some("forward".to_string()),
            rate: 1.0,
            seed: 0,
        }));
        assert!(slow_stage_delay("forward").is_some());
        assert!(slow_stage_delay("serialize").is_none());
        set_armed(None);
    }
}
