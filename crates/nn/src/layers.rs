//! Neural layers assembled from tape ops: [`Linear`], [`Mlp`] (the paper's
//! 3-layer regressor heads), [`GruCell`] (the Combine function, Eq. 8) and
//! [`AdditiveAttention`] (the scoring of Eq. 5/6).
//!
//! Layers own [`ParamId`]s into a shared [`Params`] store and expose a
//! `forward` that records ops on a [`Tape`].

use rand::Rng;

use crate::kernels::Act;
use crate::params::{ParamId, Params};
use crate::tape::{Tape, VarId};

/// Fully connected layer `y = x·W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a Xavier-initialized linear layer under `name`.
    pub fn new<R: Rng + ?Sized>(
        params: &mut Params,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        Linear {
            w: params.register_xavier(format!("{name}.w"), in_dim, out_dim, rng),
            b: params.register_zeros(format!("{name}.b"), 1, out_dim),
            in_dim,
            out_dim,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Records `x·W + b`.
    pub fn forward(&self, tape: &mut Tape, params: &Params, x: VarId) -> VarId {
        let w = tape.param(params, self.w);
        let b = tape.param(params, self.b);
        let h = tape.matmul(x, w);
        tape.add_row(h, b)
    }
}

/// Multi-layer perceptron with ReLU between layers (paper Section IV-A3:
/// "the regressor consists of 2 independent sets of 3-MLPs ... ReLU is used
/// as the activation function between MLP layers").
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Registers an MLP with the given layer widths, e.g. `[64, 32, 32, 2]`.
    ///
    /// # Panics
    /// Panics if fewer than two dims are given.
    pub fn new<R: Rng + ?Sized>(
        params: &mut Params,
        name: &str,
        dims: &[usize],
        rng: &mut R,
    ) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output dims"
        );
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, pair)| Linear::new(params, &format!("{name}.{i}"), pair[0], pair[1], rng))
            .collect();
        Mlp { layers }
    }

    /// Records the forward pass (ReLU between layers, none after the last).
    pub fn forward(&self, tape: &mut Tape, params: &Params, x: VarId) -> VarId {
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(tape, params, h);
            if i + 1 < self.layers.len() {
                h = tape.relu(h);
            }
        }
        h
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

/// Gated recurrent unit cell — the Combine function of Eq. (4)/(8):
/// `h' = GRU([m, x], h)`.
///
/// Standard formulation:
/// `z = σ(i·Wz + h·Uz + bz)`, `r = σ(i·Wr + h·Ur + br)`,
/// `n = tanh(i·Wn + (r⊙h)·Un + bn)`, `h' = (1-z)⊙n + z⊙h`.
#[derive(Debug, Clone)]
pub struct GruCell {
    wz: ParamId,
    uz: ParamId,
    bz: ParamId,
    wr: ParamId,
    ur: ParamId,
    br: ParamId,
    wn: ParamId,
    un: ParamId,
    bn: ParamId,
    input_dim: usize,
    hidden_dim: usize,
}

impl GruCell {
    /// Registers a GRU cell under `name`.
    pub fn new<R: Rng + ?Sized>(
        params: &mut Params,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        rng: &mut R,
    ) -> Self {
        let mut reg_w = |suffix: &str, rows: usize| {
            params.register_xavier(format!("{name}.{suffix}"), rows, hidden_dim, rng)
        };
        let wz = reg_w("wz", input_dim);
        let uz = reg_w("uz", hidden_dim);
        let wr = reg_w("wr", input_dim);
        let ur = reg_w("ur", hidden_dim);
        let wn = reg_w("wn", input_dim);
        let un = reg_w("un", hidden_dim);
        let bz = params.register_zeros(format!("{name}.bz"), 1, hidden_dim);
        let br = params.register_zeros(format!("{name}.br"), 1, hidden_dim);
        let bn = params.register_zeros(format!("{name}.bn"), 1, hidden_dim);
        GruCell {
            wz,
            uz,
            bz,
            wr,
            ur,
            br,
            wn,
            un,
            bn,
            input_dim,
            hidden_dim,
        }
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden state dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Records one GRU step: `input` is `n×input_dim`, `hidden` is
    /// `n×hidden_dim`; returns the new `n×hidden_dim` state.
    ///
    /// Each gate is one fused tape node
    /// ([`Tape::fused_gate`], `act(x·W + h·U + b)`), dispatched through the
    /// process-wide GEMM [`Kernel`](crate::Kernel) — numerically identical
    /// to the unfused op chain, but the tape stores one intermediate per
    /// gate instead of five.
    pub fn forward(&self, tape: &mut Tape, params: &Params, input: VarId, hidden: VarId) -> VarId {
        let gate = |tape: &mut Tape, w, u, b, act| {
            let wv = tape.param(params, w);
            let uv = tape.param(params, u);
            let bv = tape.param(params, b);
            tape.fused_gate(input, wv, hidden, uv, Some(bv), act)
        };
        let z = gate(tape, self.wz, self.uz, self.bz, Act::Sigmoid);
        let r = gate(tape, self.wr, self.ur, self.br, Act::Sigmoid);

        let wnv = tape.param(params, self.wn);
        let unv = tape.param(params, self.un);
        let bnv = tape.param(params, self.bn);
        let rh = tape.mul(r, hidden);
        let n = tape.fused_gate(input, wnv, rh, unv, Some(bnv), Act::Tanh);

        // h' = (1 - z) ⊙ n + z ⊙ h
        let one_minus_z = tape.affine(z, -1.0, 1.0);
        let a = tape.mul(one_minus_z, n);
        let b = tape.mul(z, hidden);
        tape.add(a, b)
    }
}

/// Additive attention scorer (Thost & Chen style, used by Eq. 5/6):
/// `score(query, key) = queryᵀ·w1 + keyᵀ·w2` — a scalar per row pair.
#[derive(Debug, Clone)]
pub struct AdditiveAttention {
    w1: ParamId,
    w2: ParamId,
}

impl AdditiveAttention {
    /// Registers scoring vectors for `dim`-dimensional states.
    pub fn new<R: Rng + ?Sized>(params: &mut Params, name: &str, dim: usize, rng: &mut R) -> Self {
        AdditiveAttention {
            w1: params.register_xavier(format!("{name}.w1"), dim, 1, rng),
            w2: params.register_xavier(format!("{name}.w2"), dim, 1, rng),
        }
    }

    /// Scores queries (`n×d`) against keys (`m×d`) that were pre-aligned:
    /// returns `query·w1 + key·w2` where both operands are `k×d` matrices
    /// with matching rows, yielding a `k×1` score column. Recorded as one
    /// fused tape node ([`Tape::fused_gate`] without bias or activation).
    pub fn score(&self, tape: &mut Tape, params: &Params, query: VarId, key: VarId) -> VarId {
        let w1 = tape.param(params, self.w1);
        let w2 = tape.param(params, self.w2);
        tape.fused_gate(query, w1, key, w2, None, Act::Identity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = Params::new();
        let lin = Linear::new(&mut params, "lin", 3, 5, &mut rng);
        assert_eq!(lin.in_dim(), 3);
        assert_eq!(lin.out_dim(), 5);
        let mut tape = Tape::new();
        let x = tape.input(Matrix::zeros(7, 3));
        let y = lin.forward(&mut tape, &params, x);
        assert_eq!(tape.value(y).shape(), (7, 5));
    }

    #[test]
    fn linear_zero_weights_give_bias() {
        let mut params = Params::new();
        let w = params.register("l.w", Matrix::zeros(2, 2));
        let b = params.register("l.b", Matrix::from_rows(&[&[1.0, -1.0]]));
        let _ = (w, b);
        let lin = Linear {
            w: params.find("l.w").unwrap(),
            b: params.find("l.b").unwrap(),
            in_dim: 2,
            out_dim: 2,
        };
        let mut tape = Tape::new();
        let x = tape.input(Matrix::full(3, 2, 5.0));
        let y = lin.forward(&mut tape, &params, x);
        for r in 0..3 {
            assert_eq!(tape.value(y).get(r, 0), 1.0);
            assert_eq!(tape.value(y).get(r, 1), -1.0);
        }
    }

    #[test]
    fn mlp_depth_and_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = Params::new();
        let mlp = Mlp::new(&mut params, "head", &[8, 16, 16, 2], &mut rng);
        assert_eq!(mlp.depth(), 3);
        let mut tape = Tape::new();
        let x = tape.input(Matrix::zeros(4, 8));
        let y = mlp.forward(&mut tape, &params, x);
        assert_eq!(tape.value(y).shape(), (4, 2));
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn mlp_needs_two_dims() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = Params::new();
        let _ = Mlp::new(&mut params, "bad", &[8], &mut rng);
    }

    #[test]
    fn gru_keeps_state_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut params = Params::new();
        let gru = GruCell::new(&mut params, "gru", 6, 4, &mut rng);
        assert_eq!(gru.input_dim(), 6);
        assert_eq!(gru.hidden_dim(), 4);
        let mut tape = Tape::new();
        let x = tape.input(Matrix::zeros(5, 6));
        let h = tape.input(Matrix::zeros(5, 4));
        let h2 = gru.forward(&mut tape, &params, x, h);
        assert_eq!(tape.value(h2).shape(), (5, 4));
    }

    #[test]
    fn gru_zero_input_zero_state_stays_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut params = Params::new();
        let gru = GruCell::new(&mut params, "gru", 3, 3, &mut rng);
        let mut tape = Tape::new();
        let x = tape.input(Matrix::zeros(2, 3));
        let mut h = tape.input(Matrix::zeros(2, 3));
        for _ in 0..20 {
            h = gru.forward(&mut tape, &params, x, h);
        }
        // Bounded by tanh range.
        for &v in tape.value(h).data() {
            assert!(v.abs() <= 1.0 + 1e-5);
        }
    }

    #[test]
    fn gru_is_trainable() {
        // One gradient step must reduce L1 loss towards a constant target.
        let mut rng = StdRng::seed_from_u64(4);
        let mut params = Params::new();
        let gru = GruCell::new(&mut params, "gru", 2, 2, &mut rng);
        let x = Matrix::from_rows(&[&[0.5, -0.3]]);
        let h0 = Matrix::from_rows(&[&[0.1, 0.2]]);
        let target = Matrix::from_rows(&[&[0.9, -0.9]]);
        let loss_value = |params: &Params| {
            let mut tape = Tape::new();
            let xv = tape.input(x.clone());
            let hv = tape.input(h0.clone());
            let h1 = gru.forward(&mut tape, params, xv, hv);
            let loss = tape.l1_loss(h1, &target);
            (tape.value(loss).get(0, 0), tape, loss)
        };
        let (before, tape, loss) = loss_value(&params);
        let grads = tape.backward(loss);
        let mut opt = crate::optim::Adam::new(0.05);
        opt.step(&mut params, &grads);
        let (after, _, _) = loss_value(&params);
        assert!(after < before, "loss {before} -> {after}");
    }

    #[test]
    fn attention_score_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut params = Params::new();
        let att = AdditiveAttention::new(&mut params, "att", 4, &mut rng);
        let mut tape = Tape::new();
        let q = tape.input(Matrix::zeros(6, 4));
        let k = tape.input(Matrix::zeros(6, 4));
        let s = att.score(&mut tape, &params, q, k);
        assert_eq!(tape.value(s).shape(), (6, 1));
    }
}
