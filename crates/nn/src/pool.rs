//! Persistent worker pool behind the multi-threaded execution layer.
//!
//! DeepSeq's levelized propagation is embarrassingly parallel *within* a
//! level, and every GEMM kernel in [`kernels`](crate::kernels) is
//! row-partitionable without changing a single accumulation order. This
//! module provides the one shared substrate both exploit — and, since the
//! HTTP serving edge landed, the substrate connection handlers run on too:
//! a [`Pool`] of persistent `std::thread` workers, each with its **own job
//! queue**, stealing from its siblings when it runs dry (no external
//! dependencies — the build is offline). A scoped [`Pool::run`] lets
//! callers fan borrowed work out across the workers; a fire-and-forget
//! [`Pool::spawn`] takes `'static` jobs (the serve engine's request path
//! and the HTTP server's per-connection handlers).
//!
//! # Per-worker queues and stealing
//!
//! The first multi-threaded incarnation of this pool fed every worker from
//! a single `mpsc` channel behind one mutex. Under a handful of CPU-bound
//! fan-outs that was invisible; under a network front door pushing one job
//! per connection plus nested GEMM fan-outs it becomes the contended hot
//! spot. Jobs are now pushed round-robin onto per-worker queues; a worker
//! pops from its own queue first and *steals* from the others when it is
//! empty, so enqueues and dequeues in the common case touch different
//! locks, and an idle worker always finds queued work no matter which
//! queue it landed on.
//!
//! The two job classes steal differently. Scoped [`Pool::run`] tasks are
//! pure compute and may be taken by anyone — including other blocked `run`
//! callers, which keeps nested fan-out deadlock-free exactly as before.
//! Fire-and-forget [`Pool::spawn`] jobs may block on external events (a
//! connection handler in a socket read), so only the workers take them: a
//! `run` caller waiting on its row chunks never picks up a job that could
//! park it on someone else's socket.
//!
//! # Determinism
//!
//! The pool never reorders or splits arithmetic on its own: callers hand it
//! *disjoint* tasks (row ranges of a product, node ranges of a level) whose
//! per-element computation is identical to the single-threaded code.
//! Stealing only changes *which thread* runs a task, never what the task
//! computes or where it writes. Results are therefore **bitwise identical
//! at any thread count** — property-tested in `crates/nn/tests/properties.rs`
//! and `crates/serve/tests/properties.rs` across pools of 1, 2, 4 and 7
//! threads.
//!
//! # Sizing
//!
//! The process-wide pool ([`Pool::global`]) is sized by the
//! `DEEPSEQ_THREADS` environment variable (read once): a positive integer
//! sets the total parallelism, `1` recovers exactly the single-threaded
//! behavior (no workers are spawned, every task runs inline on the caller),
//! and an unset variable defaults to [`std::thread::available_parallelism`].
//! Unrecognized values warn once to stderr and are recorded in the
//! [`config`](crate::config) warning registry (surfaced by the serve
//! `/metrics` endpoint), then fall back to the default. Explicitly sized
//! pools ([`Pool::new`]) serve tests and benchmarks.
//!
//! # Example
//!
//! ```
//! use deepseq_nn::pool::Pool;
//!
//! let pool = Pool::new(4);
//! let mut out = vec![0u64; 4];
//! // Fan disjoint borrows out across the pool; `run` blocks until done.
//! let tasks: Vec<Box<dyn FnOnce() + Send>> = out
//!     .chunks_mut(1)
//!     .enumerate()
//!     .map(|(i, slot)| {
//!         Box::new(move || slot[0] = i as u64 * 10) as Box<dyn FnOnce() + Send>
//!     })
//!     .collect();
//! pool.run(tasks);
//! assert_eq!(out, [0, 10, 20, 30]);
//! ```

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::trace;

/// Environment variable sizing the process-wide pool ([`Pool::global`]):
/// a positive integer thread count (`1` disables threading entirely),
/// default [`std::thread::available_parallelism`]. Read once, on first use;
/// unrecognized values warn once to stderr and use the default.
pub const THREADS_ENV: &str = "DEEPSEQ_THREADS";

/// Upper bound on configured thread counts — far above any real machine,
/// it only guards against absurd `DEEPSEQ_THREADS` values.
const MAX_THREADS: usize = 1024;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// One class of per-worker queues with a round-robin push cursor.
struct QueueClass {
    queues: Vec<Mutex<VecDeque<Job>>>,
    next: AtomicUsize,
}

impl QueueClass {
    fn new(workers: usize) -> QueueClass {
        QueueClass {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            next: AtomicUsize::new(0),
        }
    }

    fn push(&self, job: Job) {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[i].lock().expect("pool queue").push_back(job);
    }

    /// Dequeues one job, checking `home`'s own queue first and stealing
    /// from the siblings in ring order otherwise. Returns the job and
    /// whether it came from a queue other than `home`'s (a steal).
    fn pop(&self, home: usize) -> Option<(Job, bool)> {
        let n = self.queues.len();
        for k in 0..n {
            let i = (home + k) % n;
            let job = self.queues[i].lock().expect("pool queue").pop_front();
            if let Some(job) = job {
                return Some((job, i != home));
            }
        }
        None
    }
}

/// Queue state shared by the workers and every `Arc<Pool>` holder.
///
/// Jobs come in two classes with distinct stealing rules:
///
/// * **scoped** tasks (from [`Pool::run`]) are pure compute chunks that
///   never block on external events — *anyone* may steal them, including
///   other blocked `run` callers, which is what keeps nested fan-out
///   deadlock-free;
/// * **spawned** jobs (from [`Pool::spawn`]) may block arbitrarily long
///   (an HTTP connection handler sitting in a socket read) — only the
///   *workers* take them, never a blocked `run` caller, so a GEMM waiting
///   on its row chunks can never wedge itself behind a stranger's socket.
struct Shared {
    scoped: QueueClass,
    spawned: QueueClass,
    /// Jobs currently queued in either class (incremented after a push,
    /// decremented after a successful pop). Lets idle workers verify
    /// emptiness before parking without re-scanning every queue lock.
    pending: AtomicUsize,
    /// Cleared when the pool is dropped; workers drain and exit.
    open: AtomicBool,
    /// Parking lot for idle workers. Pushers notify under the lock *after*
    /// bumping `pending`, and parkers re-check `pending` under the lock
    /// before waiting, so wakeups cannot be lost; the wait still carries a
    /// timeout as a belt-and-braces backstop.
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    /// Jobs dequeued from a queue other than the popper's home queue.
    steals: AtomicU64,
    /// Times a worker entered the idle wait (parked).
    parks: AtomicU64,
    /// Times a parked worker was woken by a notify (not a timeout).
    wakeups: AtomicU64,
}

/// Which queue classes a dequeue attempt may touch.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Take {
    /// Scoped tasks first (they gate a blocked caller), then spawned jobs.
    Anything,
    /// Scoped tasks only — the rule for helping `run` callers.
    ScopedOnly,
}

impl Shared {
    /// Enqueues a job and wakes one parked worker (any worker can steal
    /// any job).
    fn push(&self, job: Job, scoped: bool) {
        if scoped {
            self.scoped.push(job);
        } else {
            self.spawned.push(job);
        }
        self.pending.fetch_add(1, Ordering::Release);
        let _guard = self.idle_lock.lock().expect("pool idle lock");
        self.idle_cv.notify_one();
    }

    /// Dequeues one job according to `take`, preferring `home`'s queues.
    fn pop(&self, home: usize, take: Take) -> Option<Job> {
        let job = self.scoped.pop(home).or_else(|| match take {
            Take::Anything => self.spawned.pop(home),
            Take::ScopedOnly => None,
        });
        if let Some((job, stolen)) = job {
            self.pending.fetch_sub(1, Ordering::Release);
            if stolen {
                self.steals.fetch_add(1, Ordering::Relaxed);
            }
            return Some(job);
        }
        None
    }
}

/// Body of one worker thread: pop-or-steal until the pool closes and the
/// queues are drained.
fn worker_loop(shared: Arc<Shared>, home: usize) {
    loop {
        if let Some(job) = shared.pop(home, Take::Anything) {
            // A panicking job must not kill the worker: scoped tasks
            // re-raise on the caller via their latch guard, spawned jobs
            // just drop their reply channel.
            let _ = catch_unwind(AssertUnwindSafe(job));
            continue;
        }
        if !shared.open.load(Ordering::Acquire) {
            return;
        }
        let guard = shared.idle_lock.lock().expect("pool idle lock");
        if shared.pending.load(Ordering::Acquire) > 0 || !shared.open.load(Ordering::Acquire) {
            continue; // something arrived between the scan and the lock
        }
        shared.parks.fetch_add(1, Ordering::Relaxed);
        let (_guard, timeout) = shared
            .idle_cv
            .wait_timeout(guard, Duration::from_millis(100))
            .expect("pool idle wait");
        if !timeout.timed_out() {
            shared.wakeups.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Counts outstanding tasks of one scoped [`Pool::run`] call; the caller
/// blocks on it (helping drain the queues, see `Pool::wait_on`) so
/// borrowed task state cannot outlive the call.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Latch {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut remaining = self.remaining.lock().expect("latch lock");
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        *self.remaining.lock().expect("latch lock") == 0
    }
}

/// Counts down the latch even if the task panics (the worker survives; the
/// panic is re-raised on the calling thread by [`Pool::run`]).
struct CountDownGuard<'a> {
    latch: &'a Latch,
    panicked: &'a AtomicBool,
    completed: bool,
}

impl Drop for CountDownGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.panicked.store(true, Ordering::Release);
        }
        self.latch.count_down();
    }
}

/// Cumulative scheduler counters of one [`Pool`] (see [`Pool::stats`]).
///
/// All counters are zero for a 1-thread pool (nothing is queued, parked
/// or stolen when every task runs inline).
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolStats {
    /// Total pool parallelism (workers + the calling thread).
    pub threads: usize,
    /// Jobs dequeued from a queue other than the popper's own — the
    /// work-stealing rate. High steals with low parks means the
    /// round-robin placement is fighting the actual load distribution.
    pub steals: u64,
    /// Times a worker found every queue empty and parked on the idle
    /// condvar.
    pub parks: u64,
    /// Parked workers woken by a push notification (timeouts excluded) —
    /// roughly "jobs that had to wait for a thread to wake up".
    pub wakeups: u64,
}

/// A persistent pool of `threads - 1` worker threads plus the calling
/// thread (see the [module docs](self)).
///
/// Cheap to share (`Arc`); the process-wide instance is [`Pool::global`].
/// Dropping a pool closes the queues and joins every worker.
pub struct Pool {
    threads: usize,
    shared: Option<Arc<Shared>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl Pool {
    /// A pool with `threads` total parallelism: `threads - 1` persistent
    /// workers plus the thread calling [`Pool::run`]. `threads` is clamped
    /// to at least 1; a 1-thread pool spawns nothing and runs every task
    /// inline, byte-for-byte the pre-threading behavior.
    pub fn new(threads: usize) -> Pool {
        let threads = threads.clamp(1, MAX_THREADS);
        if threads == 1 {
            return Pool {
                threads,
                shared: None,
                workers: Vec::new(),
            };
        }
        let shared = Arc::new(Shared {
            scoped: QueueClass::new(threads - 1),
            spawned: QueueClass::new(threads - 1),
            pending: AtomicUsize::new(0),
            open: AtomicBool::new(true),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
        });
        let workers = (0..threads - 1)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("deepseq-pool-{}", i + 1))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            threads,
            shared: Some(shared),
            workers,
        }
    }

    /// The process-wide shared pool, sized by `DEEPSEQ_THREADS` (default:
    /// available parallelism). Created on first use and never torn down.
    pub fn global() -> &'static Arc<Pool> {
        static GLOBAL: OnceLock<Arc<Pool>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(Pool::new(configured_threads())))
    }

    /// Total parallelism (workers + the calling thread), at least 1.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Snapshot of the scheduler counters (steals / parks / wakeups)
    /// since the pool was created. All zeros on a 1-thread pool.
    pub fn stats(&self) -> PoolStats {
        let mut stats = PoolStats {
            threads: self.threads,
            ..PoolStats::default()
        };
        if let Some(shared) = &self.shared {
            stats.steals = shared.steals.load(Ordering::Relaxed);
            stats.parks = shared.parks.load(Ordering::Relaxed);
            stats.wakeups = shared.wakeups.load(Ordering::Relaxed);
        }
        stats
    }

    /// Runs every task to completion, fanning them out across the workers;
    /// the caller executes tasks too. Blocks until all tasks finished, so
    /// tasks may borrow from the caller's stack.
    ///
    /// Tasks must write to disjoint state; the pool adds no synchronization
    /// between them beyond completion. On a 1-thread pool or with a single
    /// task, every task runs inline on the caller **in order** — this is
    /// what makes `DEEPSEQ_THREADS=1` exactly the single-threaded behavior.
    ///
    /// `run` may be called from inside a pool task (a request job fanning
    /// its levels out, a level chunk fanning a GEMM out): while waiting for
    /// its own tasks, the caller **steals queued scoped tasks and runs
    /// them** (never [`Pool::spawn`] jobs, which may block on I/O), so
    /// nested fan-out always makes progress even with every worker
    /// occupied, and idle workers pick nested tasks up for real
    /// parallelism.
    ///
    /// # Panics
    /// If a task panics, the panic is re-raised here after all other tasks
    /// of this call completed (workers survive).
    pub fn run<'scope>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        if tasks.is_empty() {
            return;
        }
        let inline = self.threads == 1 || tasks.len() == 1 || self.shared.is_none();
        if inline {
            for task in tasks {
                task();
            }
            return;
        }
        let shared = self.shared.as_ref().expect("checked above");
        let latch = Arc::new(Latch::new(tasks.len() - 1));
        let panicked = Arc::new(AtomicBool::new(false));
        // Forward the caller's trace id into the fanned-out tasks so a
        // request's level/GEMM spans stay attributable to it whichever
        // worker (or stealing `run` caller) executes them. One atomic
        // load when tracing is off; zero-cost inside the task when the
        // caller has no trace.
        let trace_ctx = if trace::enabled() {
            trace::current_trace()
        } else {
            0
        };
        let mut tasks = tasks.into_iter();
        let first = tasks.next().expect("tasks nonempty");
        for task in tasks {
            // SAFETY: the latch guarantees every queued task has finished
            // before `run` returns — the `WaitGuard` below waits even while
            // unwinding — so the `'scope` borrows inside `task` are live for
            // as long as any worker can touch them. Erasing the lifetime is
            // what lets a *persistent* pool (whose queues hold `'static`
            // jobs) execute borrowed work.
            let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
            let latch = Arc::clone(&latch);
            let panicked = Arc::clone(&panicked);
            shared.push(
                Box::new(move || {
                    let _trace = (trace_ctx != 0).then(|| trace::scope(trace_ctx));
                    let mut guard = CountDownGuard {
                        latch: &latch,
                        panicked: &panicked,
                        completed: false,
                    };
                    task();
                    guard.completed = true;
                }),
                true,
            );
        }
        {
            // Block until the queued tasks drain, even if `first` panics.
            struct WaitGuard<'a> {
                latch: &'a Latch,
                pool: &'a Pool,
            }
            impl Drop for WaitGuard<'_> {
                fn drop(&mut self) {
                    self.pool.wait_on(self.latch);
                }
            }
            let _wait = WaitGuard {
                latch: &latch,
                pool: self,
            };
            first();
        }
        if panicked.load(Ordering::Acquire) {
            panic!("a deepseq pool task panicked");
        }
    }

    /// Blocks until `latch` reaches zero, stealing and executing queued
    /// jobs while waiting. The helping is what makes nested `run` calls
    /// deadlock-free: a task blocked on its sub-tasks drains the very
    /// queues those sub-tasks sit in, so some thread always makes progress
    /// no matter how many workers are themselves blocked in nested waits.
    fn wait_on(&self, latch: &Latch) {
        let Some(shared) = &self.shared else {
            return;
        };
        loop {
            if latch.is_done() {
                return;
            }
            if let Some(job) = shared.pop(0, Take::ScopedOnly) {
                let _ = catch_unwind(AssertUnwindSafe(job));
                continue;
            }
            // Queues looked empty: sleep briefly on the latch. The timeout
            // re-polls the queues, since new jobs don't signal this condvar.
            let guard = latch.remaining.lock().expect("latch lock");
            if *guard == 0 {
                return;
            }
            let _ = latch
                .done
                .wait_timeout(guard, Duration::from_micros(500))
                .expect("latch wait");
        }
    }

    /// Enqueues a `'static` job for a worker (fire and forget). On a
    /// 1-thread pool the job runs inline before `spawn` returns. A panic in
    /// the job is swallowed (the worker survives); jobs that must report
    /// completion should do so through a channel they own.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        match &self.shared {
            Some(shared) => {
                let trace_ctx = if trace::enabled() {
                    trace::current_trace()
                } else {
                    0
                };
                if trace_ctx != 0 {
                    shared.push(
                        Box::new(move || {
                            let _trace = trace::scope(trace_ctx);
                            job();
                        }),
                        false,
                    );
                } else {
                    shared.push(Box::new(job), false);
                }
            }
            None => job(),
        }
    }

    /// Computes `f(scratch, i)` for every `i in 0..total` across the pool
    /// and returns the results **in index order**, regardless of which
    /// worker produced them or when it finished.
    ///
    /// Indices are split into contiguous chunks (at most one per pool
    /// thread, at least `min_per_chunk` each, via [`chunk_ranges_or_whole`]);
    /// each chunk becomes one task that first builds a private `scratch`
    /// with `init` and then reuses it across its indices — this is how the
    /// training loop hands every worker one reusable tape. Each result is
    /// written into its own index slot, so completion order never affects
    /// the returned vector; on a 1-thread pool everything runs inline in
    /// ascending order. Chunk boundaries are therefore a pure
    /// load-balancing choice whenever `f` is a pure function of `i` — the
    /// ordered-reduction building block the deterministic data-parallel
    /// trainer and evaluator are made of.
    pub fn ordered_map<S, T, I, F>(
        &self,
        total: usize,
        min_per_chunk: usize,
        init: I,
        f: F,
    ) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        let mut slots: Vec<Option<T>> = Vec::with_capacity(total);
        slots.resize_with(total, || None);
        {
            let init = &init;
            let f = &f;
            let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
            let mut slots_rest: &mut [Option<T>] = &mut slots;
            for range in chunk_ranges_or_whole(total, self.threads(), min_per_chunk) {
                let (chunk, rest) = slots_rest.split_at_mut(range.len());
                slots_rest = rest;
                tasks.push(Box::new(move || {
                    let mut scratch = init();
                    for (slot, i) in chunk.iter_mut().zip(range) {
                        *slot = Some(f(&mut scratch, i));
                    }
                }));
            }
            self.run(tasks);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("chunks cover every index"))
            .collect()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        let Some(shared) = self.shared.take() else {
            return;
        };
        // Closing the pool ends every worker's loop once the queues drain.
        shared.open.store(false, Ordering::Release);
        {
            let _guard = shared.idle_lock.lock().expect("pool idle lock");
            shared.idle_cv.notify_all();
        }
        let me = thread::current().id();
        for handle in self.workers.drain(..) {
            if handle.thread().id() == me {
                // The last `Arc<Pool>` can be released from inside a worker
                // (a spawned job outliving its engine): joining ourselves
                // would deadlock. Detach instead — this worker's loop exits
                // on the closed pool right after the job returns.
                continue;
            }
            let _ = handle.join();
        }
    }
}

/// Splits `0..total` into at most `max_chunks` contiguous ranges of at
/// least `min_per_chunk` items each (the last chunk may be smaller only
/// when `total` itself is). Returns one `0..total` range when `total` is
/// too small to split — callers need no special casing for the serial
/// path. Empty when `total == 0`.
///
/// Chunk boundaries never change results: every parallel consumer in this
/// workspace computes each output element identically regardless of which
/// chunk it lands in.
pub fn chunk_ranges(total: usize, max_chunks: usize, min_per_chunk: usize) -> Vec<Range<usize>> {
    if total == 0 {
        return Vec::new();
    }
    let max_by_size = total / min_per_chunk.max(1);
    let chunks = max_chunks.max(1).min(max_by_size).max(1);
    let base = total / chunks;
    let extra = total % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let len = base + usize::from(i < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// [`chunk_ranges`], gated for the common fan-out-or-not decision: splits
/// only when more than one chunk is allowed *and* `total` is at least two
/// minimum chunks; otherwise returns the single whole range (empty when
/// `total == 0`). Keeping this in one place keeps the GEMM and
/// level-chunking fan-out policies in sync.
pub fn chunk_ranges_or_whole(
    total: usize,
    max_chunks: usize,
    min_per_chunk: usize,
) -> Vec<Range<usize>> {
    if max_chunks > 1 && total >= 2 * min_per_chunk.max(1) {
        chunk_ranges(total, max_chunks, min_per_chunk)
    } else if total == 0 {
        Vec::new()
    } else {
        // One whole range over the input (not `0..total` index values).
        #[allow(clippy::single_range_in_vec_init)]
        {
            vec![0..total]
        }
    }
}

/// The thread count named by `DEEPSEQ_THREADS`, or available parallelism.
/// Warns once (via the `OnceLock` in [`Pool::global`]) through the
/// [`config`](crate::config) registry when the variable is set to
/// something that is not a positive integer.
fn configured_threads() -> usize {
    let default = || thread::available_parallelism().map_or(1, |n| n.get());
    match std::env::var(THREADS_ENV) {
        Ok(value) => match value.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n.min(MAX_THREADS),
            _ => {
                crate::config::report_warning(format!(
                    "{THREADS_ENV}={value:?} is not a positive thread count; \
                     using available parallelism"
                ));
                default()
            }
        },
        Err(_) => default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn boxed<'a>(f: impl FnOnce() + Send + 'a) -> Box<dyn FnOnce() + Send + 'a> {
        Box::new(f)
    }

    #[test]
    fn runs_every_task_exactly_once() {
        for threads in [1, 2, 4, 7] {
            let pool = Pool::new(threads);
            let counter = AtomicUsize::new(0);
            let tasks = (0..23)
                .map(|_| {
                    boxed(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            pool.run(tasks);
            assert_eq!(counter.load(Ordering::Relaxed), 23, "threads={threads}");
        }
    }

    #[test]
    fn tasks_may_borrow_disjoint_caller_state() {
        let pool = Pool::new(4);
        let mut data = vec![0usize; 100];
        let tasks = data
            .chunks_mut(7)
            .enumerate()
            .map(|(i, chunk)| boxed(move || chunk.iter_mut().for_each(|v| *v = i)))
            .collect();
        pool.run(tasks);
        for (j, &v) in data.iter().enumerate() {
            assert_eq!(v, j / 7);
        }
    }

    #[test]
    fn nested_runs_complete() {
        let pool = Arc::new(Pool::new(3));
        let outer: Vec<_> = (0..3)
            .map(|_| {
                let pool = Arc::clone(&pool);
                boxed(move || {
                    let counter = AtomicUsize::new(0);
                    let inner = (0..5)
                        .map(|_| {
                            boxed(|| {
                                counter.fetch_add(1, Ordering::Relaxed);
                            })
                        })
                        .collect();
                    pool.run(inner);
                    assert_eq!(counter.load(Ordering::Relaxed), 5);
                })
            })
            .collect();
        pool.run(outer);
    }

    #[test]
    fn nested_runs_from_saturating_spawned_jobs_make_progress() {
        // More blocking jobs than workers, each fanning out a nested run:
        // without steal-while-waiting this deadlocks (every worker blocked
        // on sub-tasks that sit behind other jobs in the queues).
        let pool = Arc::new(Pool::new(2)); // one worker
        let (tx, rx) = mpsc::channel();
        for _ in 0..4 {
            let inner_pool = Arc::clone(&pool);
            let tx = tx.clone();
            pool.spawn(move || {
                let pool = inner_pool;
                let counter = AtomicUsize::new(0);
                let inner = (0..8)
                    .map(|_| {
                        boxed(|| {
                            counter.fetch_add(1, Ordering::Relaxed);
                        })
                    })
                    .collect();
                pool.run(inner);
                tx.send(counter.load(Ordering::Relaxed)).expect("rx lives");
            });
        }
        drop(tx);
        for _ in 0..4 {
            let n = rx
                .recv_timeout(std::time::Duration::from_secs(10))
                .expect("nested fan-out completed");
            assert_eq!(n, 8);
        }
    }

    #[test]
    fn spawned_jobs_complete() {
        let pool = Pool::new(3);
        let (tx, rx) = mpsc::channel();
        for i in 0..10 {
            let tx = tx.clone();
            pool.spawn(move || tx.send(i).expect("receiver lives"));
        }
        drop(tx);
        let mut got: Vec<i32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_are_stolen_across_worker_queues() {
        // 2 workers, one of them wedged on a long job: every other job —
        // including those round-robined onto the wedged worker's queue —
        // must still complete promptly via stealing.
        let pool = Pool::new(3);
        let (wedge_tx, wedge_rx) = mpsc::channel::<()>();
        pool.spawn(move || {
            // Hold one worker until the test observed the others finish.
            let _ = wedge_rx.recv_timeout(std::time::Duration::from_secs(10));
        });
        let (tx, rx) = mpsc::channel();
        for i in 0..16 {
            let tx = tx.clone();
            pool.spawn(move || tx.send(i).expect("receiver lives"));
        }
        drop(tx);
        let mut got: Vec<i32> = Vec::new();
        for _ in 0..16 {
            got.push(
                rx.recv_timeout(std::time::Duration::from_secs(10))
                    .expect("stolen jobs complete while a worker is wedged"),
            );
        }
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
        // Half the jobs round-robined onto the wedged worker's queue; the
        // free worker must have stolen them.
        assert!(pool.stats().steals > 0, "{:?}", pool.stats());
        wedge_tx.send(()).expect("wedged worker still waiting");
    }

    #[test]
    fn stats_report_threads_parks_and_zero_for_inline_pools() {
        let single = Pool::new(1);
        let stats = single.stats();
        assert_eq!(stats.threads, 1);
        assert_eq!((stats.steals, stats.parks, stats.wakeups), (0, 0, 0));

        let pool = Pool::new(3);
        // Give both workers time to find their queues empty and park.
        std::thread::sleep(std::time::Duration::from_millis(30));
        let (tx, rx) = mpsc::channel();
        for i in 0..8 {
            let tx = tx.clone();
            pool.spawn(move || tx.send(i).expect("receiver lives"));
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 8);
        let stats = pool.stats();
        assert_eq!(stats.threads, 3);
        assert!(stats.parks > 0, "{stats:?}");
        // Wakeups only happen out of a park; the inverse isn't guaranteed
        // (a park may end on its timeout), hence ≤, not ==.
        assert!(stats.wakeups <= stats.parks, "{stats:?}");
    }

    #[test]
    fn blocked_run_callers_never_execute_spawned_jobs() {
        // One worker, wedged. A spawned job and a scoped `run` are both
        // queued: the run caller must finish its own scoped tasks without
        // ever picking up the (potentially blocking) spawned job.
        let pool = Pool::new(2);
        let (wedge_tx, wedge_rx) = mpsc::channel::<()>();
        pool.spawn(move || {
            let _ = wedge_rx.recv_timeout(std::time::Duration::from_secs(10));
        });
        // Give the worker a moment to take the wedge job off its queue.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let spawned_ran = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&spawned_ran);
        pool.spawn(move || flag.store(true, Ordering::Release));
        let counter = AtomicUsize::new(0);
        pool.run(
            (0..6)
                .map(|_| {
                    boxed(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect(),
        );
        assert_eq!(counter.load(Ordering::Relaxed), 6);
        // The only thread allowed to run the spawned job is still wedged.
        assert!(!spawned_ran.load(Ordering::Acquire));
        wedge_tx.send(()).expect("wedged worker still waiting");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !spawned_ran.load(Ordering::Acquire) {
            assert!(std::time::Instant::now() < deadline, "spawned job ran");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    #[test]
    fn task_panic_propagates_and_pool_survives() {
        let pool = Pool::new(2);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(vec![boxed(|| {}), boxed(|| panic!("boom"))]);
        }));
        assert!(outcome.is_err());
        // The worker survived the panic and still executes tasks.
        let done = AtomicBool::new(false);
        pool.run(vec![
            boxed(|| {}),
            boxed(|| done.store(true, Ordering::Relaxed)),
        ]);
        assert!(done.load(Ordering::Relaxed));
    }

    #[test]
    fn pool_dropped_from_inside_a_worker_does_not_hang() {
        // A spawned job can hold the last `Arc<Pool>` (an engine request
        // outliving its engine): releasing it runs `Pool::drop` on the
        // worker itself, which must not try to join its own thread.
        let pool = Arc::new(Pool::new(2));
        let (tx, rx) = mpsc::channel();
        let held = Arc::clone(&pool);
        pool.spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            drop(held); // last Arc → Pool::drop on this worker thread
            tx.send(()).expect("receiver lives");
        });
        drop(pool);
        rx.recv_timeout(std::time::Duration::from_secs(10))
            .expect("worker survived dropping its own pool");
    }

    #[test]
    fn ordered_map_returns_index_order_and_reuses_scratch() {
        for threads in [1usize, 2, 4, 7] {
            let pool = Pool::new(threads);
            // Results come back in index order whatever the pool size…
            let squares = pool.ordered_map(23, 1, || (), |(), i| i * i);
            assert_eq!(
                squares,
                (0..23).map(|i| i * i).collect::<Vec<_>>(),
                "threads={threads}"
            );
            // …scratch is per-chunk: the number of `init` calls equals the
            // number of chunks, never the number of indices.
            let inits = AtomicUsize::new(0);
            let got = pool.ordered_map(
                40,
                1,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    0usize
                },
                |count, i| {
                    *count += 1;
                    (i, *count)
                },
            );
            assert_eq!(got.len(), 40);
            let chunks = inits.load(Ordering::Relaxed);
            assert!(chunks <= threads, "threads={threads}: {chunks} chunks");
            // Each chunk's counter climbs 1, 2, 3, … — proof the scratch
            // persisted across that chunk's indices.
            assert!(got.iter().any(|&(_, c)| c > 1) || threads >= 40);
        }
        // Empty input yields an empty vector.
        assert!(Pool::new(4).ordered_map(0, 1, || (), |(), i| i).is_empty());
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for total in [0usize, 1, 7, 64, 100, 1023] {
            for max_chunks in [1usize, 2, 4, 7] {
                for min_per in [1usize, 8, 32] {
                    let ranges = chunk_ranges(total, max_chunks, min_per);
                    assert!(ranges.len() <= max_chunks.max(1));
                    let mut next = 0;
                    for r in &ranges {
                        assert_eq!(r.start, next, "contiguous");
                        assert!(!r.is_empty());
                        next = r.end;
                    }
                    assert_eq!(next, total, "covers 0..{total}");
                    if total >= min_per {
                        assert!(ranges.iter().all(|r| r.len() >= min_per || total < min_per));
                    }
                }
            }
        }
    }

    #[test]
    fn one_thread_pool_spawns_nothing_and_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.threads(), 1);
        // Order is guaranteed inline: later tasks see earlier writes.
        let log = Mutex::new(Vec::new());
        pool.run(
            (0..4)
                .map(|i| {
                    let log = &log;
                    boxed(move || log.lock().expect("log").push(i))
                })
                .collect(),
        );
        assert_eq!(*log.lock().expect("log"), vec![0, 1, 2, 3]);
    }
}
