//! Process-wide registry of configuration warnings.
//!
//! The runtime knobs read from the environment (`DEEPSEQ_THREADS`,
//! `DEEPSEQ_KERNEL`) warn once to stderr when set to something
//! unrecognized and then fall back to a default. In a server deployment
//! stderr scrolls away; the warning must also be *queryable* so the
//! `/metrics` endpoint of `deepseq-serve` can expose a `config_warnings`
//! counter and CI logs show misconfiguration as a scraped number instead
//! of a lost log line. This module is that registry: [`report_warning`]
//! prints the warning and records it; [`warning_count`] and [`warnings`]
//! read it back from anywhere in the process.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

static COUNT: AtomicU64 = AtomicU64::new(0);
static MESSAGES: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Prints `warning: {message}` to stderr and records the message in the
/// process-wide registry. Callers are responsible for once-ness (every
/// existing env knob already reads its variable through a `OnceLock`).
pub fn report_warning(message: impl Into<String>) {
    let message = message.into();
    eprintln!("warning: {message}");
    COUNT.fetch_add(1, Ordering::Relaxed);
    MESSAGES
        .lock()
        .expect("config warning registry")
        .push(message);
}

/// Number of configuration warnings reported since process start.
pub fn warning_count() -> u64 {
    COUNT.load(Ordering::Relaxed)
}

/// The recorded warning messages, in report order.
pub fn warnings() -> Vec<String> {
    MESSAGES.lock().expect("config warning registry").clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reported_warnings_are_counted_and_readable() {
        let before = warning_count();
        report_warning("test warning (ignore me)".to_string());
        assert!(warning_count() > before);
        assert!(warnings()
            .iter()
            .any(|m| m.contains("test warning (ignore me)")));
    }
}
