//! Named parameter store with self-contained text and binary checkpoint
//! formats.
//!
//! Models register their weights here and receive [`ParamId`]s; the autograd
//! [`Tape`](crate::tape::Tape) accumulates gradients into a [`GradStore`]
//! keyed by the same ids, and [`Adam`](crate::optim::Adam) applies updates.
//! Checkpoints come in two interchangeable formats, neither requiring a
//! serialization framework dependency:
//!
//! * **text** (`deepseq-params v1`): name, shape and values as decimal
//!   floats, one matrix row per line — human-readable and diff-friendly;
//! * **binary** (`DSQP` magic, version 1): little-endian `f32` payloads
//!   behind a length-prefixed name/shape header per parameter — compact and
//!   fast to load, used by the serving subsystem (`deepseq-serve`). The
//!   byte-level layout is specified for third-party loaders in
//!   `docs/CHECKPOINTS.md` at the repository root.
//!
//! Both round-trip losslessly (Rust's float formatting prints the shortest
//! exactly-round-tripping decimal), so [`Params::save_to_string`] and
//! [`Params::save_binary`] restore bit-identical weights.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use rand::Rng;

use crate::matrix::Matrix;

/// Identifier of a registered parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub usize);

/// A named collection of trainable matrices.
///
/// # Example
/// ```
/// use deepseq_nn::{Matrix, Params};
///
/// let mut params = Params::new();
/// let w = params.register("w", Matrix::zeros(2, 2));
/// params.get_mut(w).set(0, 0, 1.0);
/// assert_eq!(params.get(w).get(0, 0), 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Params {
    names: Vec<String>,
    values: Vec<Matrix>,
    index: HashMap<String, ParamId>,
}

impl Params {
    /// An empty store.
    pub fn new() -> Self {
        Params::default()
    }

    /// Registers a parameter under a unique name.
    ///
    /// # Panics
    /// Panics if the name was already registered (model construction bug).
    pub fn register(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let name = name.into();
        assert!(
            !self.index.contains_key(&name),
            "parameter `{name}` registered twice"
        );
        let id = ParamId(self.values.len());
        self.index.insert(name.clone(), id);
        self.names.push(name);
        self.values.push(value);
        id
    }

    /// Registers a parameter initialized with Xavier/Glorot uniform values.
    pub fn register_xavier<R: Rng + ?Sized>(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        rng: &mut R,
    ) -> ParamId {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let m = Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-bound..bound));
        self.register(name, m)
    }

    /// Registers an all-zero parameter (biases).
    pub fn register_zeros(&mut self, name: impl Into<String>, rows: usize, cols: usize) -> ParamId {
        self.register(name, Matrix::zeros(rows, cols))
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_weights(&self) -> usize {
        self.values.iter().map(|m| m.data().len()).sum()
    }

    /// The value of a parameter.
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable value of a parameter.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    /// The name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Looks a parameter up by name.
    pub fn find(&self, name: &str) -> Option<ParamId> {
        self.index.get(name).copied()
    }

    /// Iterates `(id, name, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Matrix)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (ParamId(i), self.names[i].as_str(), v))
    }

    /// Serializes all parameters to the text checkpoint format.
    pub fn save_to_string(&self) -> String {
        let mut out = String::new();
        out.push_str("deepseq-params v1\n");
        for (_, name, value) in self.iter() {
            out.push_str(&format!(
                "param {} {} {}\n",
                name,
                value.rows(),
                value.cols()
            ));
            for r in 0..value.rows() {
                let row: Vec<String> = value.row(r).iter().map(|v| format!("{v:e}")).collect();
                out.push_str(&row.join(" "));
                out.push('\n');
            }
        }
        out
    }

    /// Loads values *into* already-registered parameters by name. Parameters
    /// present in the store but missing from the checkpoint are left
    /// untouched; unknown names in the checkpoint are an error.
    ///
    /// # Errors
    /// Returns [`ParamsError`] on format violations, shape mismatches or
    /// unknown parameter names.
    pub fn load_from_string(&mut self, text: &str) -> Result<(), ParamsError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, header)) if header.trim() == "deepseq-params v1" => {}
            _ => return Err(ParamsError::BadHeader),
        }
        while let Some((lineno, line)) = lines.next() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            if parts.next() != Some("param") {
                return Err(ParamsError::Parse {
                    line: lineno + 1,
                    msg: "expected `param <name> <rows> <cols>`".into(),
                });
            }
            let name = parts.next().ok_or(ParamsError::Parse {
                line: lineno + 1,
                msg: "missing name".into(),
            })?;
            let rows: usize = parse_field(parts.next(), lineno)?;
            let cols: usize = parse_field(parts.next(), lineno)?;
            let id = self
                .find(name)
                .ok_or_else(|| ParamsError::UnknownParam(name.to_string()))?;
            if self.get(id).shape() != (rows, cols) {
                return Err(ParamsError::ShapeMismatch {
                    name: name.to_string(),
                    expected: self.get(id).shape(),
                    actual: (rows, cols),
                });
            }
            let mut data = Vec::with_capacity(rows * cols);
            for _ in 0..rows {
                let (lineno, row_line) = lines.next().ok_or(ParamsError::UnexpectedEof)?;
                for tok in row_line.split_whitespace() {
                    let v: f32 = tok.parse().map_err(|_| ParamsError::Parse {
                        line: lineno + 1,
                        msg: format!("bad float `{tok}`"),
                    })?;
                    data.push(v);
                }
            }
            if data.len() != rows * cols {
                return Err(ParamsError::Parse {
                    line: lineno + 1,
                    msg: format!("expected {} values, got {}", rows * cols, data.len()),
                });
            }
            *self.get_mut(id) = Matrix::from_vec(rows, cols, data);
        }
        Ok(())
    }
}

/// Magic bytes opening every binary parameter checkpoint.
pub const BINARY_MAGIC: [u8; 4] = *b"DSQP";

/// Version written by [`Params::save_binary`]: v2 appends a CRC32
/// integrity trailer over everything before it.
pub const BINARY_VERSION: u16 = 2;

/// The pre-trailer format; still loadable, with a warning, for
/// checkpoints written before the CRC32 trailer existed.
const BINARY_VERSION_V1: u16 = 1;

/// IEEE CRC-32 (reflected, polynomial `0xEDB88320`) over `bytes` — the
/// checksum carried in v2 `DSQP`/`DSQM` checkpoint trailers. Detects
/// every single-bit flip and all burst errors up to 32 bits.
pub fn crc32(bytes: &[u8]) -> u32 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Appends the 4-byte little-endian CRC-32 trailer over `out`'s current
/// contents — the final step of writing any v2 checkpoint blob.
pub fn append_crc_trailer(out: &mut Vec<u8>) {
    let crc = crc32(out);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Verifies the CRC-32 trailer of a v2 checkpoint blob whose header is
/// `header_len` bytes, returning the body with the trailer stripped.
///
/// # Errors
/// [`ParamsError::Truncated`] when there is no room for header + trailer,
/// [`ParamsError::ChecksumMismatch`] (with the trailer's byte offset)
/// when the stored and computed checksums disagree.
pub fn verify_crc_trailer(bytes: &[u8], header_len: usize) -> Result<&[u8], ParamsError> {
    let min = header_len + 4;
    if bytes.len() < min {
        return Err(ParamsError::Truncated {
            offset: bytes.len(),
            needed: min - bytes.len(),
        });
    }
    let at = bytes.len() - 4;
    let mut trailer = [0u8; 4];
    trailer.copy_from_slice(&bytes[at..]);
    let stored = u32::from_le_bytes(trailer);
    let computed = crc32(&bytes[..at]);
    if stored != computed {
        return Err(ParamsError::ChecksumMismatch {
            offset: at,
            stored,
            computed,
        });
    }
    Ok(&bytes[..at])
}

/// Writes `bytes` to `path` crash-safely: write to a sibling temp file,
/// fsync it, then atomically rename over the target (and fsync the
/// containing directory so the rename itself is durable). A crash at any
/// point leaves either the old file or the complete new one on disk,
/// never a torn mix.
pub fn write_atomic(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    let dir = match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "checkpoint".to_string());
    let tmp = dir.join(format!(".{name}.tmp.{}", std::process::id()));
    let written = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)
    })();
    if written.is_err() {
        let _ = std::fs::remove_file(&tmp);
        return written;
    }
    // Durability of the rename itself — best effort: not every platform
    // allows opening a directory for sync.
    if let Ok(dirfd) = std::fs::File::open(&dir) {
        let _ = dirfd.sync_all();
    }
    Ok(())
}

/// Raw `mmap`/`munmap` bindings for the private read-only checkpoint
/// mapping. std already links libc on every unix target, so declaring the
/// two symbols here adds no dependency. Constants are identical on Linux
/// and the BSD family (including macOS): `PROT_READ = 1`,
/// `MAP_PRIVATE = 2`, `MAP_FAILED = -1`.
#[cfg(unix)]
mod mmap_sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// The storage behind a [`CheckpointMap`]: a private read-only memory
/// mapping where the platform provides one, a plain owned buffer otherwise.
enum MapBacking {
    #[cfg(unix)]
    Mapped {
        ptr: *mut std::os::raw::c_void,
        len: usize,
    },
    Owned(Vec<u8>),
}

/// A zero-copy, read-only view of a checkpoint file.
///
/// On unix the file is mapped `PROT_READ`/`MAP_PRIVATE`, so N engine
/// shards (or N processes) opening the same checkpoint share one set of
/// physical pages instead of N heap copies, and opening is O(1) in the
/// file size. Everywhere else — and whenever the mapping fails or the file
/// is empty — it transparently falls back to a buffered read into an owned
/// buffer; [`CheckpointMap::bytes`] behaves identically either way, so the
/// CRC check and the decoder never know the difference.
///
/// # Mapping rules
///
/// The bytes of a mapped file must not change underneath the mapping.
/// Checkpoints written through [`write_atomic`] are safe by construction:
/// replacement happens by `rename`, which swaps the *directory entry* and
/// leaves the mapped old inode intact until the last mapping drops.
/// Truncating or rewriting a checkpoint **in place** while it is mapped is
/// outside the contract (on most platforms reads then fault). `MAP_PRIVATE`
/// additionally isolates the view from in-place appends.
///
/// No alignment is guaranteed for the interior weight payloads (parameter
/// records carry variable-length names), so decoders must — and ours do —
/// read floats byte-wise rather than reinterpreting the mapping as `[f32]`.
pub struct CheckpointMap {
    backing: MapBacking,
}

// SAFETY: the mapping is immutable for the lifetime of the value (PROT_READ,
// never remapped), so shared references to its bytes are as safe across
// threads as any &[u8]; the owned variant is a plain Vec.
unsafe impl Send for CheckpointMap {}
unsafe impl Sync for CheckpointMap {}

impl CheckpointMap {
    /// Opens `path` read-only, mapping it when possible (see the type
    /// docs).
    ///
    /// # Errors
    /// Any I/O error opening or (in the fallback) reading the file.
    pub fn open(path: &std::path::Path) -> std::io::Result<CheckpointMap> {
        let mut file = std::fs::File::open(path)?;
        #[cfg(unix)]
        {
            let len = file.metadata()?.len();
            if len > 0 && len <= usize::MAX as u64 {
                use std::os::unix::io::AsRawFd;
                let len = len as usize;
                // SAFETY: len > 0, the fd is a freshly opened readable
                // file, and the result is checked against MAP_FAILED.
                let ptr = unsafe {
                    mmap_sys::mmap(
                        std::ptr::null_mut(),
                        len,
                        mmap_sys::PROT_READ,
                        mmap_sys::MAP_PRIVATE,
                        file.as_raw_fd(),
                        0,
                    )
                };
                if ptr != mmap_sys::map_failed() && !ptr.is_null() {
                    return Ok(CheckpointMap {
                        backing: MapBacking::Mapped { ptr, len },
                    });
                }
                // Mapping refused (exotic filesystem, resource limits) —
                // fall through to the copying path.
            }
        }
        let mut bytes = Vec::new();
        std::io::Read::read_to_end(&mut file, &mut bytes)?;
        Ok(CheckpointMap {
            backing: MapBacking::Owned(bytes),
        })
    }

    /// The checkpoint bytes (mapped or owned — identical semantics).
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            MapBacking::Mapped { ptr, len } => {
                // SAFETY: the mapping is PROT_READ, `len` bytes long, and
                // lives until Drop; see the Send/Sync note above.
                unsafe { std::slice::from_raw_parts(*ptr as *const u8, *len) }
            }
            MapBacking::Owned(bytes) => bytes,
        }
    }

    /// Length of the checkpoint in bytes.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// True for an empty checkpoint file.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the bytes come from a memory mapping (false on the
    /// buffered-read fallback) — surfaced in logs so operators can tell
    /// which path a reload took.
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(unix)]
            MapBacking::Mapped { .. } => true,
            MapBacking::Owned(_) => false,
        }
    }
}

impl Drop for CheckpointMap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let MapBacking::Mapped { ptr, len } = self.backing {
            // SAFETY: ptr/len are exactly what mmap returned; the slice
            // handed out by `bytes` cannot outlive self.
            unsafe {
                mmap_sys::munmap(ptr, len);
            }
        }
    }
}

impl fmt::Debug for CheckpointMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckpointMap")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

impl Params {
    /// Serializes all parameters to the binary checkpoint format.
    ///
    /// Layout (all integers little-endian):
    ///
    /// ```text
    /// magic   b"DSQP"
    /// u16     format version (2)
    /// u16     reserved (0)
    /// u32     parameter count
    /// per parameter, in registration order:
    ///   u32       name length in bytes, then the UTF-8 name
    ///   u32 × 2   rows, cols
    ///   f32 × n   row-major values, IEEE-754 little-endian
    /// u32     CRC-32 (IEEE) of every preceding byte
    /// ```
    pub fn save_binary(&self) -> Vec<u8> {
        let payload: usize = self
            .iter()
            .map(|(_, name, m)| 12 + name.len() + 4 * m.data().len())
            .sum();
        let mut out = Vec::with_capacity(16 + payload);
        out.extend_from_slice(&BINARY_MAGIC);
        out.extend_from_slice(&BINARY_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for (_, name, value) in self.iter() {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(value.rows() as u32).to_le_bytes());
            out.extend_from_slice(&(value.cols() as u32).to_le_bytes());
            for &v in value.data() {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        append_crc_trailer(&mut out);
        out
    }

    /// Loads a binary checkpoint written by [`Params::save_binary`] *into*
    /// already-registered parameters by name, mirroring the semantics of
    /// [`Params::load_from_string`]: parameters missing from the checkpoint
    /// stay untouched; unknown names are an error.
    ///
    /// # Errors
    /// Returns [`ParamsError::BadMagic`] / [`ParamsError::UnsupportedVersion`]
    /// on a foreign or future header, [`ParamsError::ChecksumMismatch`] when
    /// the v2 CRC-32 trailer disagrees with the body,
    /// [`ParamsError::Truncated`] when the payload ends early, and the usual
    /// [`ParamsError::UnknownParam`] / [`ParamsError::ShapeMismatch`] on
    /// content mismatches. Legacy v1 checkpoints (no trailer) still load,
    /// with a [`crate::report_warning`] nudge to re-save.
    pub fn load_binary(&mut self, bytes: &[u8]) -> Result<(), ParamsError> {
        if crate::fault::should_inject(crate::fault::FaultPoint::CheckpointRead) {
            return Err(ParamsError::Corrupt {
                msg: "injected checkpoint_read fault".into(),
            });
        }
        // Peek the header to learn the version, then verify and strip the
        // v2 CRC trailer *before* trusting any of the body.
        let mut header = BinReader::new(bytes);
        if header.take::<4>()? != BINARY_MAGIC {
            return Err(ParamsError::BadMagic);
        }
        let body = match header.u16()? {
            // A single bit flip of version 2 (0x0002) can never read as 1,
            // so corruption cannot masquerade a v2 blob as trailer-less v1.
            BINARY_VERSION_V1 => {
                crate::config::report_warning(
                    "loading legacy v1 DSQP checkpoint (no CRC32 trailer): \
                     integrity unverified; re-save to upgrade",
                );
                bytes
            }
            BINARY_VERSION => verify_crc_trailer(bytes, 12)?,
            found => return Err(ParamsError::UnsupportedVersion { found }),
        };
        let mut r = BinReader::new(body);
        let _magic = r.take::<4>()?; // validated above
        let _version = r.u16()?;
        let _reserved = r.u16()?;
        let count = r.u32()? as usize;
        for _ in 0..count {
            let name_len = r.u32()? as usize;
            let name_bytes = r.bytes(name_len)?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| ParamsError::Corrupt {
                    msg: "parameter name is not UTF-8".into(),
                })?
                .to_string();
            let rows = r.u32()? as usize;
            let cols = r.u32()? as usize;
            let n = rows.checked_mul(cols).ok_or(ParamsError::Corrupt {
                msg: format!("overflowing shape {rows}x{cols}"),
            })?;
            // Bound the claimed payload against the actual remaining bytes
            // *before* allocating — an untrusted shape field must produce a
            // typed error, never an allocation panic.
            let byte_len = n.checked_mul(4).ok_or(ParamsError::Corrupt {
                msg: format!("overflowing shape {rows}x{cols}"),
            })?;
            if byte_len > r.remaining() {
                return Err(ParamsError::Truncated {
                    offset: r.position(),
                    needed: byte_len,
                });
            }
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(f32::from_le_bytes(r.take::<4>()?));
            }
            let id = self
                .find(&name)
                .ok_or(ParamsError::UnknownParam(name.clone()))?;
            if self.get(id).shape() != (rows, cols) {
                return Err(ParamsError::ShapeMismatch {
                    name,
                    expected: self.get(id).shape(),
                    actual: (rows, cols),
                });
            }
            *self.get_mut(id) = Matrix::from_vec(rows, cols, data);
        }
        if !r.is_done() {
            return Err(ParamsError::Corrupt {
                msg: format!("{} trailing bytes after last parameter", r.remaining()),
            });
        }
        Ok(())
    }
}

/// Bounds-checked little-endian cursor shared by the binary checkpoint
/// readers here and in `deepseq-core`.
#[derive(Debug)]
pub struct BinReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BinReader<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BinReader { bytes, pos: 0 }
    }

    /// Reads a fixed-size array, or fails with [`ParamsError::Truncated`].
    pub fn take<const N: usize>(&mut self) -> Result<[u8; N], ParamsError> {
        let slice = self.bytes(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], ParamsError> {
        let end = self.pos.checked_add(n).ok_or(ParamsError::Truncated {
            offset: self.pos,
            needed: n,
        })?;
        if end > self.bytes.len() {
            return Err(ParamsError::Truncated {
                offset: self.pos,
                needed: n,
            });
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, ParamsError> {
        Ok(u16::from_le_bytes(self.take::<2>()?))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, ParamsError> {
        Ok(u32::from_le_bytes(self.take::<4>()?))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, ParamsError> {
        Ok(u64::from_le_bytes(self.take::<8>()?))
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// True once every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// The rest of the input, consuming it.
    pub fn rest(&mut self) -> &'a [u8] {
        let slice = &self.bytes[self.pos..];
        self.pos = self.bytes.len();
        slice
    }
}

fn parse_field(tok: Option<&str>, lineno: usize) -> Result<usize, ParamsError> {
    tok.and_then(|t| t.parse().ok()).ok_or(ParamsError::Parse {
        line: lineno + 1,
        msg: "bad integer field".into(),
    })
}

/// Errors from checkpoint loading.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParamsError {
    /// Missing or wrong header line.
    BadHeader,
    /// Malformed line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description.
        msg: String,
    },
    /// Checkpoint names a parameter this model does not have.
    UnknownParam(String),
    /// Shape in checkpoint differs from the registered shape.
    ShapeMismatch {
        /// Parameter name.
        name: String,
        /// Registered shape.
        expected: (usize, usize),
        /// Checkpoint shape.
        actual: (usize, usize),
    },
    /// File ended mid-parameter.
    UnexpectedEof,
    /// Binary checkpoint does not start with the `DSQP` magic.
    BadMagic,
    /// Binary checkpoint was written by an unknown format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
    },
    /// Binary checkpoint ended before a read completed.
    Truncated {
        /// Byte offset at which the read started.
        offset: usize,
        /// Bytes the read needed.
        needed: usize,
    },
    /// Binary checkpoint is structurally invalid (bad UTF-8 name,
    /// overflowing shape, trailing bytes).
    Corrupt {
        /// Description.
        msg: String,
    },
    /// The v2 CRC-32 trailer disagrees with the checkpoint body — the
    /// blob was corrupted (bit flip, torn write) after serialization.
    ChecksumMismatch {
        /// Byte offset of the 4-byte trailer within the blob.
        offset: usize,
        /// Checksum stored in the trailer.
        stored: u32,
        /// Checksum computed over the body.
        computed: u32,
    },
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamsError::BadHeader => write!(f, "missing `deepseq-params v1` header"),
            ParamsError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            ParamsError::UnknownParam(name) => write!(f, "unknown parameter `{name}`"),
            ParamsError::ShapeMismatch {
                name,
                expected,
                actual,
            } => write!(
                f,
                "parameter `{name}` has shape {expected:?}, checkpoint has {actual:?}"
            ),
            ParamsError::UnexpectedEof => write!(f, "unexpected end of checkpoint"),
            ParamsError::BadMagic => write!(f, "missing `DSQP` binary checkpoint magic"),
            ParamsError::UnsupportedVersion { found } => {
                write!(f, "unsupported binary checkpoint version {found}")
            }
            ParamsError::Truncated { offset, needed } => write!(
                f,
                "binary checkpoint truncated: needed {needed} bytes at offset {offset}"
            ),
            ParamsError::Corrupt { msg } => write!(f, "corrupt binary checkpoint: {msg}"),
            ParamsError::ChecksumMismatch {
                offset,
                stored,
                computed,
            } => write!(
                f,
                "checkpoint CRC32 mismatch at trailer offset {offset}: \
                 stored {stored:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

impl Error for ParamsError {}

/// Gradients accumulated by a backward pass, keyed by [`ParamId`].
///
/// Stored densely (indexed by the id, which is a registration index), so
/// every traversal — [`GradStore::iter`], [`GradStore::global_norm`],
/// [`GradStore::merge`] — visits parameters in ascending-id order. That
/// ordering is part of the training determinism contract: floating-point
/// reductions over the store produce the same bits on every run and at any
/// thread count, which a hash-map keyed store cannot guarantee (its
/// iteration order varies per process).
#[derive(Debug, Clone, Default)]
pub struct GradStore {
    grads: Vec<Option<Matrix>>,
}

impl GradStore {
    /// An empty store.
    pub fn new() -> Self {
        GradStore::default()
    }

    /// The gradient of a parameter, if it participated in the loss.
    pub fn get(&self, id: ParamId) -> Option<&Matrix> {
        self.grads.get(id.0).and_then(|slot| slot.as_ref())
    }

    /// Adds `grad` into the stored gradient of `id`.
    pub fn accumulate(&mut self, id: ParamId, grad: &Matrix) {
        if self.grads.len() <= id.0 {
            self.grads.resize_with(id.0 + 1, || None);
        }
        match &mut self.grads[id.0] {
            Some(existing) => existing.add_assign(grad),
            slot @ None => *slot = Some(grad.clone()),
        }
    }

    /// Adds every gradient of `other` into this store (element-wise, in
    /// ascending [`ParamId`] order). This is the data-parallel reduction
    /// primitive: merging per-sample stores **in a fixed sample order**
    /// makes the summed gradients bitwise independent of how samples were
    /// scheduled across worker threads.
    pub fn merge(&mut self, other: &GradStore) {
        for (id, grad) in other.iter() {
            self.accumulate(id, grad);
        }
    }

    /// Iterates `(id, gradient)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Matrix)> {
        self.grads
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|g| (ParamId(i), g)))
    }

    /// Number of parameters with gradients.
    pub fn len(&self) -> usize {
        self.grads.iter().filter(|slot| slot.is_some()).count()
    }

    /// True if no gradients are stored.
    pub fn is_empty(&self) -> bool {
        self.grads.iter().all(|slot| slot.is_none())
    }

    /// Global gradient L2 norm (for clipping / diagnostics), summed in
    /// ascending id order — deterministic across runs and thread counts.
    pub fn global_norm(&self) -> f32 {
        self.iter()
            .map(|(_, g)| {
                let n = g.norm();
                n * n
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Scales all gradients in place (gradient clipping, mini-batch means).
    pub fn scale(&mut self, s: f32) {
        for g in self.grads.iter_mut().flatten() {
            g.scale_assign(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn register_and_lookup() {
        let mut p = Params::new();
        let a = p.register("a", Matrix::zeros(2, 3));
        assert_eq!(p.find("a"), Some(a));
        assert_eq!(p.name(a), "a");
        assert_eq!(p.len(), 1);
        assert_eq!(p.num_weights(), 6);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_name_panics() {
        let mut p = Params::new();
        p.register("a", Matrix::zeros(1, 1));
        p.register("a", Matrix::zeros(1, 1));
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = Params::new();
        let w = p.register_xavier("w", 10, 10, &mut rng);
        let bound = (6.0f32 / 20.0).sqrt();
        for &v in p.get(w).data() {
            assert!(v.abs() <= bound);
        }
        // Not all zero.
        assert!(p.get(w).norm() > 0.0);
    }

    #[test]
    fn checkpoint_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = Params::new();
        p.register_xavier("layer1.w", 3, 4, &mut rng);
        p.register_xavier("layer1.b", 1, 4, &mut rng);
        let saved = p.save_to_string();

        let mut q = Params::new();
        let mut rng2 = StdRng::seed_from_u64(2);
        q.register_xavier("layer1.w", 3, 4, &mut rng2);
        q.register_xavier("layer1.b", 1, 4, &mut rng2);
        q.load_from_string(&saved).unwrap();
        for (id, name, value) in p.iter() {
            let _ = id;
            let qid = q.find(name).unwrap();
            for (a, b) in value.data().iter().zip(q.get(qid).data()) {
                assert!((a - b).abs() < 1e-6, "{name}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn load_rejects_bad_header() {
        let mut p = Params::new();
        assert_eq!(p.load_from_string("nope"), Err(ParamsError::BadHeader));
    }

    #[test]
    fn load_rejects_unknown_param() {
        let mut p = Params::new();
        let text = "deepseq-params v1\nparam ghost 1 1\n0.0\n";
        assert!(matches!(
            p.load_from_string(text),
            Err(ParamsError::UnknownParam(_))
        ));
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let mut p = Params::new();
        p.register("w", Matrix::zeros(2, 2));
        let text = "deepseq-params v1\nparam w 1 1\n0.0\n";
        assert!(matches!(
            p.load_from_string(text),
            Err(ParamsError::ShapeMismatch { .. })
        ));
    }

    fn sample_params(seed: u64) -> Params {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = Params::new();
        p.register_xavier("layer1.w", 3, 4, &mut rng);
        p.register_xavier("layer1.b", 1, 4, &mut rng);
        p.register_xavier("head.w", 4, 2, &mut rng);
        p
    }

    #[test]
    fn binary_roundtrip_is_bit_exact() {
        let p = sample_params(1);
        let bytes = p.save_binary();
        let mut q = sample_params(2);
        q.load_binary(&bytes).unwrap();
        for (_, name, value) in p.iter() {
            let qid = q.find(name).unwrap();
            assert_eq!(value, q.get(qid), "{name}");
        }
        // Re-serializing restored values reproduces the exact byte stream.
        assert_eq!(q.save_binary(), bytes);
    }

    #[test]
    fn binary_rejects_bad_magic_and_version() {
        let mut p = sample_params(1);
        assert_eq!(p.load_binary(b"NOPE"), Err(ParamsError::BadMagic));
        let mut bytes = p.save_binary();
        bytes[4] = 0xFF; // version low byte
        assert!(matches!(
            p.load_binary(&bytes),
            Err(ParamsError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn binary_rejects_truncation_at_every_prefix_length() {
        let mut p = sample_params(1);
        let bytes = p.save_binary();
        for cut in 0..bytes.len() {
            let err = p.load_binary(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    ParamsError::Truncated { .. }
                        | ParamsError::BadMagic
                        | ParamsError::Corrupt { .. }
                        | ParamsError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
        // Trailing garbage breaks the checksum.
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(matches!(
            p.load_binary(&longer),
            Err(ParamsError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn binary_rejects_every_single_bit_flip() {
        // Any one-bit corruption anywhere in the blob must yield a typed
        // error — never Ok (a silently-wrong load) and never a panic. CRC32
        // detects all single-bit errors, and a flipped version field can
        // never turn 2 into 1 (the trailer-less legacy version).
        let mut p = sample_params(1);
        let bytes = p.save_binary();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= 1 << bit;
                let err = p.load_binary(&corrupt);
                assert!(err.is_err(), "flip byte {i} bit {bit} accepted");
            }
        }
    }

    #[test]
    fn legacy_v1_checkpoint_loads_with_warning() {
        let p = sample_params(1);
        // A v1-era blob: same layout minus the trailer, version field 1.
        let mut v1 = p.save_binary();
        v1.truncate(v1.len() - 4);
        v1[4] = 1;
        let before = crate::config::warning_count();
        let mut q = sample_params(2);
        q.load_binary(&v1).expect("legacy v1 blob loads");
        assert!(crate::config::warning_count() > before, "no legacy warning");
        for (_, name, value) in p.iter() {
            let qid = q.find(name).unwrap();
            assert_eq!(value, q.get(qid), "{name}");
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn write_atomic_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("deepseq-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.bin");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // No temp files left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name() != "ckpt.bin")
            .collect();
        assert!(leftovers.is_empty(), "leftover temp files: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_map_round_trips_binary_checkpoints() {
        let dir = std::env::temp_dir().join(format!("deepseq-map-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.bin");
        let p = sample_params(1);
        let bytes = p.save_binary();
        write_atomic(&path, &bytes).unwrap();

        let map = CheckpointMap::open(&path).unwrap();
        assert_eq!(map.bytes(), &bytes[..]);
        assert_eq!(map.len(), bytes.len());
        assert!(!map.is_empty());
        #[cfg(unix)]
        assert!(map.is_mapped(), "unix should take the mmap path");

        // The decoder consumes the mapped bytes like any slice.
        let mut q = sample_params(2);
        q.load_binary(map.bytes()).unwrap();
        for (_, name, value) in p.iter() {
            assert_eq!(value, q.get(q.find(name).unwrap()), "{name}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_map_survives_atomic_replacement() {
        // The mapping rule the zero-copy path depends on: write_atomic
        // replaces by rename, so a live mapping keeps reading the *old*
        // inode's bytes while new opens see the new file.
        let dir = std::env::temp_dir().join(format!("deepseq-map-swap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.bin");
        write_atomic(&path, b"generation-one").unwrap();
        let old = CheckpointMap::open(&path).unwrap();
        write_atomic(&path, b"generation-TWO!").unwrap();
        assert_eq!(old.bytes(), b"generation-one");
        let new = CheckpointMap::open(&path).unwrap();
        assert_eq!(new.bytes(), b"generation-TWO!");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_map_handles_empty_files_via_fallback() {
        let dir = std::env::temp_dir().join(format!("deepseq-map-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let map = CheckpointMap::open(&path).unwrap();
        assert!(map.is_empty());
        assert!(!map.is_mapped()); // zero-length maps are invalid; Vec path
        assert_eq!(map.bytes(), b"");
        assert!(CheckpointMap::open(&dir.join("missing.bin")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_map_is_shareable_across_threads() {
        let dir = std::env::temp_dir().join(format!("deepseq-map-share-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.bin");
        let bytes = sample_params(3).save_binary();
        write_atomic(&path, &bytes).unwrap();
        let map = std::sync::Arc::new(CheckpointMap::open(&path).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let map = std::sync::Arc::clone(&map);
                let want = bytes.clone();
                std::thread::spawn(move || assert_eq!(map.bytes(), &want[..]))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn binary_rejects_huge_claimed_shapes_without_allocating() {
        // Valid header, one parameter claiming a ~1.8e19-element matrix:
        // must fail with a typed error before any allocation is attempted.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&BINARY_MAGIC);
        bytes.extend_from_slice(&BINARY_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one parameter
        bytes.extend_from_slice(&1u32.to_le_bytes()); // name length
        bytes.push(b'w');
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // rows
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // cols
        append_crc_trailer(&mut bytes); // valid trailer: reach the shape check
        let mut p = Params::new();
        p.register("w", Matrix::zeros(1, 1));
        assert!(matches!(
            p.load_binary(&bytes),
            Err(ParamsError::Truncated { .. } | ParamsError::Corrupt { .. })
        ));
    }

    #[test]
    fn binary_rejects_unknown_param_and_shape_mismatch() {
        let p = sample_params(1);
        let bytes = p.save_binary();
        let mut empty = Params::new();
        assert!(matches!(
            empty.load_binary(&bytes),
            Err(ParamsError::UnknownParam(_))
        ));
        let mut wrong = Params::new();
        wrong.register("layer1.w", Matrix::zeros(2, 2));
        assert!(matches!(
            wrong.load_binary(&bytes),
            Err(ParamsError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn text_and_binary_checkpoints_agree() {
        let p = sample_params(3);
        let mut from_text = sample_params(4);
        from_text.load_from_string(&p.save_to_string()).unwrap();
        let mut from_binary = sample_params(5);
        from_binary.load_binary(&p.save_binary()).unwrap();
        for (_, name, _) in p.iter() {
            let a = from_text.get(from_text.find(name).unwrap());
            let b = from_binary.get(from_binary.find(name).unwrap());
            assert_eq!(a, b, "{name}: text and binary restores diverge");
        }
    }

    #[test]
    fn grad_store_accumulates() {
        let mut g = GradStore::new();
        let id = ParamId(0);
        g.accumulate(id, &Matrix::full(1, 2, 1.0));
        g.accumulate(id, &Matrix::full(1, 2, 2.0));
        assert_eq!(g.get(id).unwrap(), &Matrix::full(1, 2, 3.0));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn grad_store_merge_adds_in_id_order() {
        let mut a = GradStore::new();
        a.accumulate(ParamId(0), &Matrix::full(1, 2, 1.0));
        a.accumulate(ParamId(3), &Matrix::full(2, 1, -2.0));
        let mut b = GradStore::new();
        b.accumulate(ParamId(3), &Matrix::full(2, 1, 5.0));
        b.accumulate(ParamId(1), &Matrix::full(1, 1, 4.0));
        a.merge(&b);
        assert_eq!(a.get(ParamId(0)).unwrap(), &Matrix::full(1, 2, 1.0));
        assert_eq!(a.get(ParamId(1)).unwrap(), &Matrix::full(1, 1, 4.0));
        assert!(a.get(ParamId(2)).is_none());
        assert_eq!(a.get(ParamId(3)).unwrap(), &Matrix::full(2, 1, 3.0));
        let ids: Vec<usize> = a.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 3], "iteration is ascending-id");
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(GradStore::new().is_empty());
    }

    #[test]
    fn grad_store_norm_and_scale() {
        let mut g = GradStore::new();
        g.accumulate(ParamId(0), &Matrix::full(1, 1, 3.0));
        g.accumulate(ParamId(1), &Matrix::full(1, 1, 4.0));
        assert!((g.global_norm() - 5.0).abs() < 1e-6);
        g.scale(0.5);
        assert!((g.global_norm() - 2.5).abs() < 1e-6);
    }
}
