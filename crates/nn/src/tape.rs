//! Reverse-mode autograd tape.
//!
//! A [`Tape`] records a computation as a flat list of ops over [`Matrix`]
//! values; [`Tape::backward`] walks it in reverse and accumulates parameter
//! gradients into a [`GradStore`]. The op set is exactly what levelized
//! DAG-GNN message passing needs: matrix products, element-wise maps,
//! row gathering across earlier values (the "topological batching" of the
//! paper), segment softmax/sum for per-node attention over variable-size
//! predecessor sets, and an L1 loss (paper Eq. 3).
//!
//! # Example
//!
//! ```
//! use deepseq_nn::{Matrix, Params, Tape};
//!
//! let mut params = Params::new();
//! let w = params.register("w", Matrix::from_rows(&[&[2.0], &[1.0]]));
//! let mut tape = Tape::new();
//! let x = tape.input(Matrix::from_rows(&[&[3.0, 4.0]]));
//! let wv = tape.param(&params, w);
//! let y = tape.matmul(x, wv); // 3*2 + 4*1 = 10
//! let loss = tape.l1_loss(y, &Matrix::from_rows(&[&[0.0]]));
//! let grads = tape.backward(loss);
//! assert_eq!(tape.value(y).get(0, 0), 10.0);
//! // dL/dw = sign(y) * x = [3, 4]
//! assert_eq!(grads.get(w).unwrap().get(0, 0), 3.0);
//! ```

use crate::kernels::{Act, Kernel};
use crate::matrix::Matrix;
use crate::params::{GradStore, ParamId, Params};

/// Identifier of a value on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(usize);

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    MatMul(VarId, VarId),
    Add(VarId, VarId),
    Sub(VarId, VarId),
    Mul(VarId, VarId),
    AddRow(VarId, VarId),
    Affine(VarId, f32),
    Sigmoid(VarId),
    Tanh(VarId),
    Relu(VarId),
    ConcatCols(VarId, VarId),
    GatherRows(Vec<(VarId, usize)>),
    SegmentSum {
        src: VarId,
        segments: Vec<usize>,
    },
    SegmentSoftmax {
        src: VarId,
        segments: Vec<usize>,
    },
    MulCol(VarId, VarId),
    FusedGate {
        x: VarId,
        w: VarId,
        h: VarId,
        u: VarId,
        b: Option<VarId>,
        act: Act,
    },
    L1Loss {
        pred: VarId,
        target: Matrix,
        row_weights: Option<Vec<f32>>,
    },
    AddScalars(Vec<VarId>),
}

#[derive(Debug, Clone)]
struct Node {
    op: Op,
    value: Matrix,
    param: Option<ParamId>,
}

/// A recorded computation (see the [module documentation](self)).
#[derive(Debug, Clone, Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of recorded values.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Discards the recorded computation but keeps the node buffer's
    /// allocation, so one tape can be reused across many samples (the
    /// data-parallel training loop hands each worker a private tape and
    /// resets it between samples instead of reallocating).
    pub fn reset(&mut self) {
        self.nodes.clear();
    }

    /// The value of a variable.
    pub fn value(&self, v: VarId) -> &Matrix {
        &self.nodes[v.0].value
    }

    fn push(&mut self, op: Op, value: Matrix, param: Option<ParamId>) -> VarId {
        let id = VarId(self.nodes.len());
        self.nodes.push(Node { op, value, param });
        id
    }

    /// Records a constant input (no gradient tracked beyond it).
    pub fn input(&mut self, value: Matrix) -> VarId {
        self.push(Op::Leaf, value, None)
    }

    /// Records a parameter leaf; gradients reaching it are accumulated into
    /// the [`GradStore`] under its [`ParamId`].
    pub fn param(&mut self, params: &Params, id: ParamId) -> VarId {
        self.push(Op::Leaf, params.get(id).clone(), Some(id))
    }

    /// `a × b`.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let value = self.value(a).matmul(self.value(b));
        self.push(Op::MatMul(a, b), value, None)
    }

    /// Element-wise `a + b` (same shape).
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let value = self.value(a).zip(self.value(b), |x, y| x + y);
        self.push(Op::Add(a, b), value, None)
    }

    /// Element-wise `a - b` (same shape).
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let value = self.value(a).zip(self.value(b), |x, y| x - y);
        self.push(Op::Sub(a, b), value, None)
    }

    /// Element-wise `a ⊙ b` (same shape).
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        let value = self.value(a).zip(self.value(b), |x, y| x * y);
        self.push(Op::Mul(a, b), value, None)
    }

    /// Broadcast add of a `1×c` row vector to every row of an `n×c` matrix.
    ///
    /// # Panics
    /// Panics if `row` is not `1×c`.
    pub fn add_row(&mut self, a: VarId, row: VarId) -> VarId {
        let (n, c) = self.value(a).shape();
        assert_eq!(self.value(row).shape(), (1, c), "add_row needs 1x{c}");
        let rv = self.value(row).clone();
        let av = self.value(a);
        let value = Matrix::from_fn(n, c, |r, col| av.get(r, col) + rv.get(0, col));
        self.push(Op::AddRow(a, row), value, None)
    }

    /// `alpha·a + beta` element-wise.
    pub fn affine(&mut self, a: VarId, alpha: f32, beta: f32) -> VarId {
        let value = self.value(a).map(|x| alpha * x + beta);
        self.push(Op::Affine(a, alpha), value, None)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        let value = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(Op::Sigmoid(a), value, None)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        let value = self.value(a).map(f32::tanh);
        self.push(Op::Tanh(a), value, None)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: VarId) -> VarId {
        let value = self.value(a).map(|x| x.max(0.0));
        self.push(Op::Relu(a), value, None)
    }

    /// Column-wise concatenation `[a | b]` (same row count).
    pub fn concat_cols(&mut self, a: VarId, b: VarId) -> VarId {
        let av = self.value(a);
        let bv = self.value(b);
        assert_eq!(av.rows(), bv.rows(), "concat_cols row mismatch");
        let (n, ca) = av.shape();
        let cb = bv.cols();
        let mut value = Matrix::zeros(n, ca + cb);
        for r in 0..n {
            value.row_mut(r)[..ca].copy_from_slice(av.row(r));
            value.row_mut(r)[ca..].copy_from_slice(bv.row(r));
        }
        self.push(Op::ConcatCols(a, b), value, None)
    }

    /// Gathers rows from earlier variables: output row `i` is
    /// `sources[i].0.value.row(sources[i].1)`. All sources must share the
    /// column count. This is the op that stitches per-level node batches
    /// together during levelized propagation.
    ///
    /// # Panics
    /// Panics if `sources` is empty or column counts differ.
    pub fn gather_rows(&mut self, sources: Vec<(VarId, usize)>) -> VarId {
        assert!(!sources.is_empty(), "gather_rows needs at least one row");
        let c = self.value(sources[0].0).cols();
        let mut value = Matrix::zeros(sources.len(), c);
        for (i, &(var, row)) in sources.iter().enumerate() {
            let src = self.value(var);
            assert_eq!(src.cols(), c, "gather_rows column mismatch");
            value.row_mut(i).copy_from_slice(src.row(row));
        }
        self.push(Op::GatherRows(sources), value, None)
    }

    /// Sums rows of `src` (`m×c`) into `num_segments` output rows according
    /// to `segments` (`segments[i]` = output row of input row `i`).
    ///
    /// # Panics
    /// Panics if `segments.len() != m` or a segment id is out of range.
    pub fn segment_sum(&mut self, src: VarId, segments: Vec<usize>, num_segments: usize) -> VarId {
        let sv = self.value(src);
        assert_eq!(segments.len(), sv.rows(), "segment_sum length mismatch");
        let mut value = Matrix::zeros(num_segments, sv.cols());
        for (i, &seg) in segments.iter().enumerate() {
            assert!(seg < num_segments, "segment id out of range");
            let row = sv.row(i).to_vec();
            for (o, v) in value.row_mut(seg).iter_mut().zip(row) {
                *o += v;
            }
        }
        self.push(Op::SegmentSum { src, segments }, value, None)
    }

    /// Softmax over an `m×1` score column, normalized *within* each segment
    /// (the attention normalization over each node's predecessor set).
    ///
    /// # Panics
    /// Panics if `src` is not a column vector or lengths mismatch.
    pub fn segment_softmax(&mut self, src: VarId, segments: Vec<usize>) -> VarId {
        let sv = self.value(src);
        assert_eq!(sv.cols(), 1, "segment_softmax needs an m×1 column");
        assert_eq!(segments.len(), sv.rows(), "segment_softmax length mismatch");
        let m = sv.rows();
        let num_segments = segments.iter().copied().max().map_or(0, |s| s + 1);
        // Per-segment max for numerical stability.
        let mut seg_max = vec![f32::NEG_INFINITY; num_segments];
        for i in 0..m {
            seg_max[segments[i]] = seg_max[segments[i]].max(sv.get(i, 0));
        }
        let mut seg_total = vec![0.0f32; num_segments];
        let mut exps = vec![0.0f32; m];
        for i in 0..m {
            let e = (sv.get(i, 0) - seg_max[segments[i]]).exp();
            exps[i] = e;
            seg_total[segments[i]] += e;
        }
        let mut value = Matrix::zeros(m, 1);
        for i in 0..m {
            value.set(i, 0, exps[i] / seg_total[segments[i]]);
        }
        self.push(Op::SegmentSoftmax { src, segments }, value, None)
    }

    /// Broadcast multiply of an `m×c` matrix by an `m×1` column (attention
    /// weights applied to gathered messages).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn mul_col(&mut self, a: VarId, col: VarId) -> VarId {
        let av = self.value(a);
        let cv = self.value(col);
        assert_eq!(cv.cols(), 1, "mul_col needs an m×1 column");
        assert_eq!(av.rows(), cv.rows(), "mul_col row mismatch");
        let value = Matrix::from_fn(av.rows(), av.cols(), |r, c| av.get(r, c) * cv.get(r, 0));
        self.push(Op::MulCol(a, col), value, None)
    }

    /// Fused `act(x·w + h·u [+ b])` — the GRU gate pattern (Eq. 8) and the
    /// additive-attention score (Eq. 5/6) as a single tape node.
    ///
    /// The forward value is computed by the fused kernel entry point
    /// ([`Kernel::matmul_bias_act`](crate::Kernel::matmul_bias_act)) under
    /// the process-wide default kernel, with the exact floating-point
    /// sequence of the unfused op chain (`matmul`, `matmul`, `add`,
    /// `add_row`, activation) — so fusing changes tape size and speed, never
    /// results. One fused node stores one matrix instead of five, which is
    /// what keeps training-tape memory flat as hidden dims grow.
    ///
    /// # Panics
    /// Panics on operand dimension mismatches.
    pub fn fused_gate(
        &mut self,
        x: VarId,
        w: VarId,
        h: VarId,
        u: VarId,
        b: Option<VarId>,
        act: Act,
    ) -> VarId {
        let mut out = Matrix::default();
        let mut tmp = Matrix::default();
        Kernel::global().matmul_bias_act(
            self.value(x),
            self.value(w),
            Some((self.value(h), self.value(u))),
            b.map(|bv| self.value(bv)),
            act,
            &mut out,
            &mut tmp,
        );
        self.push(Op::FusedGate { x, w, h, u, b, act }, out, None)
    }

    /// Mean absolute error against a constant target, as a `1×1` scalar
    /// (paper Eq. 3 / Eq. 9 use L1 throughout).
    pub fn l1_loss(&mut self, pred: VarId, target: &Matrix) -> VarId {
        self.l1_loss_impl(pred, target.clone(), None)
    }

    /// L1 loss with per-row weights (e.g. to exclude PI rows from
    /// supervision or reweight rare nodes). Weights of zero drop rows.
    pub fn l1_loss_weighted(
        &mut self,
        pred: VarId,
        target: &Matrix,
        row_weights: Vec<f32>,
    ) -> VarId {
        self.l1_loss_impl(pred, target.clone(), Some(row_weights))
    }

    fn l1_loss_impl(
        &mut self,
        pred: VarId,
        target: Matrix,
        row_weights: Option<Vec<f32>>,
    ) -> VarId {
        let pv = self.value(pred);
        assert_eq!(pv.shape(), target.shape(), "l1_loss shape mismatch");
        if let Some(w) = &row_weights {
            assert_eq!(w.len(), pv.rows(), "row_weights length mismatch");
        }
        let (n, c) = pv.shape();
        let mut total = 0.0f64;
        let mut weight_sum = 0.0f64;
        for r in 0..n {
            let w = row_weights.as_ref().map_or(1.0, |w| w[r]) as f64;
            if w == 0.0 {
                continue;
            }
            for col in 0..c {
                total += w * (pv.get(r, col) - target.get(r, col)).abs() as f64;
            }
            weight_sum += w * c as f64;
        }
        let loss = if weight_sum > 0.0 {
            (total / weight_sum) as f32
        } else {
            0.0
        };
        self.push(
            Op::L1Loss {
                pred,
                target,
                row_weights,
            },
            Matrix::full(1, 1, loss),
            None,
        )
    }

    /// Sums `1×1` scalars (multi-task loss, paper Eq. 3).
    ///
    /// # Panics
    /// Panics if any input is not `1×1` or the list is empty.
    pub fn add_scalars(&mut self, scalars: Vec<VarId>) -> VarId {
        assert!(!scalars.is_empty(), "add_scalars needs inputs");
        let mut total = 0.0;
        for &s in &scalars {
            assert_eq!(
                self.value(s).shape(),
                (1, 1),
                "add_scalars needs 1×1 inputs"
            );
            total += self.value(s).get(0, 0);
        }
        self.push(Op::AddScalars(scalars), Matrix::full(1, 1, total), None)
    }

    /// Runs the backward pass from a `1×1` loss and returns parameter
    /// gradients.
    ///
    /// # Panics
    /// Panics if `loss` is not `1×1`.
    pub fn backward(&self, loss: VarId) -> GradStore {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward needs a scalar loss"
        );
        let mut grads: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Matrix::full(1, 1, 1.0));
        let mut store = GradStore::new();

        for idx in (0..self.nodes.len()).rev() {
            let grad = match grads[idx].take() {
                Some(g) => g,
                None => continue,
            };
            let node = &self.nodes[idx];
            if let Some(pid) = node.param {
                store.accumulate(pid, &grad);
            }
            match &node.op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let da = grad.matmul_t(&self.nodes[b.0].value);
                    let db = self.nodes[a.0].value.t_matmul(&grad);
                    accumulate(&mut grads, *a, da);
                    accumulate(&mut grads, *b, db);
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, grad.clone());
                    accumulate(&mut grads, *b, grad);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, *b, grad.map(|x| -x));
                    accumulate(&mut grads, *a, grad);
                }
                Op::Mul(a, b) => {
                    let da = grad.zip(&self.nodes[b.0].value, |g, y| g * y);
                    let db = grad.zip(&self.nodes[a.0].value, |g, x| g * x);
                    accumulate(&mut grads, *a, da);
                    accumulate(&mut grads, *b, db);
                }
                Op::AddRow(a, row) => {
                    let mut drow = Matrix::zeros(1, grad.cols());
                    for r in 0..grad.rows() {
                        for c in 0..grad.cols() {
                            drow.set(0, c, drow.get(0, c) + grad.get(r, c));
                        }
                    }
                    accumulate(&mut grads, *a, grad);
                    accumulate(&mut grads, *row, drow);
                }
                Op::Affine(a, alpha) => {
                    accumulate(&mut grads, *a, grad.map(|g| alpha * g));
                }
                Op::Sigmoid(a) => {
                    let dx = grad.zip(&node.value, |g, y| g * y * (1.0 - y));
                    accumulate(&mut grads, *a, dx);
                }
                Op::Tanh(a) => {
                    let dx = grad.zip(&node.value, |g, y| g * (1.0 - y * y));
                    accumulate(&mut grads, *a, dx);
                }
                Op::Relu(a) => {
                    let dx = grad.zip(&self.nodes[a.0].value, |g, x| if x > 0.0 { g } else { 0.0 });
                    accumulate(&mut grads, *a, dx);
                }
                Op::ConcatCols(a, b) => {
                    let ca = self.nodes[a.0].value.cols();
                    let n = grad.rows();
                    let mut da = Matrix::zeros(n, ca);
                    let mut db = Matrix::zeros(n, grad.cols() - ca);
                    for r in 0..n {
                        da.row_mut(r).copy_from_slice(&grad.row(r)[..ca]);
                        db.row_mut(r).copy_from_slice(&grad.row(r)[ca..]);
                    }
                    accumulate(&mut grads, *a, da);
                    accumulate(&mut grads, *b, db);
                }
                Op::GatherRows(sources) => {
                    for (i, &(var, row)) in sources.iter().enumerate() {
                        let shape = self.nodes[var.0].value.shape();
                        let entry =
                            grads[var.0].get_or_insert_with(|| Matrix::zeros(shape.0, shape.1));
                        for (o, &g) in entry.row_mut(row).iter_mut().zip(grad.row(i)) {
                            *o += g;
                        }
                    }
                }
                Op::SegmentSum { src, segments } => {
                    let shape = self.nodes[src.0].value.shape();
                    let mut dsrc = Matrix::zeros(shape.0, shape.1);
                    for (i, &seg) in segments.iter().enumerate() {
                        dsrc.row_mut(i).copy_from_slice(grad.row(seg));
                    }
                    accumulate(&mut grads, *src, dsrc);
                }
                Op::SegmentSoftmax { src, segments } => {
                    // ds_i = y_i * (g_i - Σ_{j in seg} y_j g_j)
                    let y = &node.value;
                    let num_segments = segments.iter().copied().max().map_or(0, |s| s + 1);
                    let mut seg_dot = vec![0.0f32; num_segments];
                    for (i, &seg) in segments.iter().enumerate() {
                        seg_dot[seg] += y.get(i, 0) * grad.get(i, 0);
                    }
                    let mut dsrc = Matrix::zeros(y.rows(), 1);
                    for (i, &seg) in segments.iter().enumerate() {
                        dsrc.set(i, 0, y.get(i, 0) * (grad.get(i, 0) - seg_dot[seg]));
                    }
                    accumulate(&mut grads, *src, dsrc);
                }
                Op::MulCol(a, col) => {
                    let av = &self.nodes[a.0].value;
                    let cv = &self.nodes[col.0].value;
                    let da =
                        Matrix::from_fn(av.rows(), av.cols(), |r, c| grad.get(r, c) * cv.get(r, 0));
                    let mut dcol = Matrix::zeros(av.rows(), 1);
                    for r in 0..av.rows() {
                        let mut acc = 0.0;
                        for c in 0..av.cols() {
                            acc += grad.get(r, c) * av.get(r, c);
                        }
                        dcol.set(r, 0, acc);
                    }
                    accumulate(&mut grads, *a, da);
                    accumulate(&mut grads, *col, dcol);
                }
                Op::FusedGate { x, w, h, u, b, act } => {
                    // Same chain rule as the unfused sequence: activation
                    // derivative from the stored output, then the two matmul
                    // backward pairs and the bias row-sum.
                    let y = &node.value;
                    let g = match act {
                        Act::Identity => grad.clone(),
                        Act::Sigmoid => grad.zip(y, |g, y| g * y * (1.0 - y)),
                        Act::Tanh => grad.zip(y, |g, y| g * (1.0 - y * y)),
                        Act::Relu => grad.zip(y, |g, y| if y > 0.0 { g } else { 0.0 }),
                    };
                    let dx = g.matmul_t(&self.nodes[w.0].value);
                    let dw = self.nodes[x.0].value.t_matmul(&g);
                    let dh = g.matmul_t(&self.nodes[u.0].value);
                    let du = self.nodes[h.0].value.t_matmul(&g);
                    accumulate(&mut grads, *x, dx);
                    accumulate(&mut grads, *w, dw);
                    accumulate(&mut grads, *h, dh);
                    accumulate(&mut grads, *u, du);
                    if let Some(b) = b {
                        let mut db = Matrix::zeros(1, g.cols());
                        for r in 0..g.rows() {
                            for c in 0..g.cols() {
                                db.set(0, c, db.get(0, c) + g.get(r, c));
                            }
                        }
                        accumulate(&mut grads, *b, db);
                    }
                }
                Op::L1Loss {
                    pred,
                    target,
                    row_weights,
                } => {
                    let pv = &self.nodes[pred.0].value;
                    let (n, c) = pv.shape();
                    let mut weight_sum = 0.0f64;
                    for r in 0..n {
                        let w = row_weights.as_ref().map_or(1.0, |w| w[r]) as f64;
                        weight_sum += w * c as f64;
                    }
                    if weight_sum > 0.0 {
                        let g0 = grad.get(0, 0) / weight_sum as f32;
                        let dpred = Matrix::from_fn(n, c, |r, col| {
                            let w = row_weights.as_ref().map_or(1.0, |w| w[r]);
                            let d = pv.get(r, col) - target.get(r, col);
                            g0 * w * d.signum()
                        });
                        accumulate(&mut grads, *pred, dpred);
                    }
                }
                Op::AddScalars(scalars) => {
                    for &s in scalars {
                        accumulate(&mut grads, s, grad.clone());
                    }
                }
            }
        }
        store
    }
}

fn accumulate(grads: &mut [Option<Matrix>], var: VarId, grad: Matrix) {
    match &mut grads[var.0] {
        Some(existing) => existing.add_assign(&grad),
        slot @ None => *slot = Some(grad),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Numerically checks dLoss/dParam for a tape-building closure.
    fn grad_check<F>(params: &mut Params, build: F, tol: f32)
    where
        F: Fn(&mut Tape, &Params) -> VarId,
    {
        let mut tape = Tape::new();
        let loss = build(&mut tape, params);
        let analytic = tape.backward(loss);
        let eps = 1e-3f32;
        let ids: Vec<ParamId> = params.iter().map(|(id, _, _)| id).collect();
        for id in ids {
            let (rows, cols) = params.get(id).shape();
            for r in 0..rows {
                for c in 0..cols {
                    let orig = params.get(id).get(r, c);
                    params.get_mut(id).set(r, c, orig + eps);
                    let mut tp = Tape::new();
                    let lp = build(&mut tp, params);
                    let fp = tp.value(lp).get(0, 0);
                    params.get_mut(id).set(r, c, orig - eps);
                    let mut tm = Tape::new();
                    let lm = build(&mut tm, params);
                    let fm = tm.value(lm).get(0, 0);
                    params.get_mut(id).set(r, c, orig);
                    let numeric = (fp - fm) / (2.0 * eps);
                    let a = analytic.get(id).map_or(0.0, |g| g.get(r, c));
                    assert!(
                        (a - numeric).abs() < tol,
                        "param {} ({r},{c}): analytic {a} vs numeric {numeric}",
                        params.name(id)
                    );
                }
            }
        }
    }

    fn rand_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn grad_matmul_chain() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = Params::new();
        let w1 = params.register("w1", rand_matrix(&mut rng, 3, 4));
        let w2 = params.register("w2", rand_matrix(&mut rng, 4, 2));
        let x = rand_matrix(&mut rng, 2, 3);
        let target = rand_matrix(&mut rng, 2, 2);
        grad_check(
            &mut params,
            move |tape, p| {
                let xv = tape.input(x.clone());
                let w1v = tape.param(p, w1);
                let w2v = tape.param(p, w2);
                let h = tape.matmul(xv, w1v);
                let h = tape.tanh(h);
                let y = tape.matmul(h, w2v);
                tape.l1_loss(y, &target)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_sigmoid_relu_affine() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = Params::new();
        let w = params.register("w", rand_matrix(&mut rng, 2, 3));
        let x = rand_matrix(&mut rng, 4, 2);
        let target = rand_matrix(&mut rng, 4, 3);
        grad_check(
            &mut params,
            move |tape, p| {
                let xv = tape.input(x.clone());
                let wv = tape.param(p, w);
                let h = tape.matmul(xv, wv);
                let s = tape.sigmoid(h);
                let r = tape.relu(s);
                let a = tape.affine(r, 2.0, -0.5);
                tape.l1_loss(a, &target)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_add_row_and_concat() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut params = Params::new();
        let w = params.register("w", rand_matrix(&mut rng, 2, 2));
        let b = params.register("b", rand_matrix(&mut rng, 1, 2));
        let x = rand_matrix(&mut rng, 3, 2);
        let target = rand_matrix(&mut rng, 3, 4);
        grad_check(
            &mut params,
            move |tape, p| {
                let xv = tape.input(x.clone());
                let wv = tape.param(p, w);
                let bv = tape.param(p, b);
                let h = tape.matmul(xv, wv);
                let h = tape.add_row(h, bv);
                let cat = tape.concat_cols(h, xv);
                tape.l1_loss(cat, &target)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_gather_and_segment_ops() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut params = Params::new();
        let emb = params.register("emb", rand_matrix(&mut rng, 4, 3));
        let w = params.register("w", rand_matrix(&mut rng, 3, 1));
        let target = rand_matrix(&mut rng, 2, 3);
        grad_check(
            &mut params,
            move |tape, p| {
                let e = tape.param(p, emb);
                // Two segments: segment 0 has rows {0, 2}, segment 1 has {1, 3}.
                let gathered = tape.gather_rows(vec![(e, 0), (e, 2), (e, 1), (e, 3)]);
                let segs = vec![0, 0, 1, 1];
                let wv = tape.param(p, w);
                let scores = tape.matmul(gathered, wv);
                let alpha = tape.segment_softmax(scores, segs.clone());
                let weighted = tape.mul_col(gathered, alpha);
                let summed = tape.segment_sum(weighted, segs, 2);
                tape.l1_loss(summed, &target)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_weighted_l1_and_scalar_sum() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut params = Params::new();
        let w = params.register("w", rand_matrix(&mut rng, 2, 2));
        let x = rand_matrix(&mut rng, 3, 2);
        let t1 = rand_matrix(&mut rng, 3, 2);
        let t2 = rand_matrix(&mut rng, 3, 2);
        grad_check(
            &mut params,
            move |tape, p| {
                let xv = tape.input(x.clone());
                let wv = tape.param(p, w);
                let h = tape.matmul(xv, wv);
                let l1 = tape.l1_loss_weighted(h, &t1, vec![1.0, 0.0, 2.0]);
                let l2 = tape.l1_loss(h, &t2);
                tape.add_scalars(vec![l1, l2])
            },
            2e-2,
        );
    }

    #[test]
    fn grad_mul_and_sub() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut params = Params::new();
        let a = params.register("a", rand_matrix(&mut rng, 2, 3));
        let b = params.register("b", rand_matrix(&mut rng, 2, 3));
        let target = rand_matrix(&mut rng, 2, 3);
        grad_check(
            &mut params,
            move |tape, p| {
                let av = tape.param(p, a);
                let bv = tape.param(p, b);
                let m = tape.mul(av, bv);
                let s = tape.sub(m, av);
                tape.l1_loss(s, &target)
            },
            2e-2,
        );
    }

    #[test]
    fn segment_softmax_normalizes_within_segments() {
        let mut tape = Tape::new();
        let scores = tape.input(Matrix::from_rows(&[&[1.0], &[2.0], &[0.5], &[3.0], &[1.5]]));
        let segs = vec![0, 0, 1, 1, 1];
        let alpha = tape.segment_softmax(scores, segs.clone());
        let v = tape.value(alpha);
        let s0: f32 = v.get(0, 0) + v.get(1, 0);
        let s1: f32 = v.get(2, 0) + v.get(3, 0) + v.get(4, 0);
        assert!((s0 - 1.0).abs() < 1e-6);
        assert!((s1 - 1.0).abs() < 1e-6);
        // Larger score ⇒ larger weight.
        assert!(v.get(1, 0) > v.get(0, 0));
        assert!(v.get(3, 0) > v.get(4, 0));
    }

    #[test]
    fn gather_rows_reads_multiple_sources() {
        let mut tape = Tape::new();
        let a = tape.input(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = tape.input(Matrix::from_rows(&[&[5.0, 6.0]]));
        let g = tape.gather_rows(vec![(b, 0), (a, 1), (a, 0)]);
        assert_eq!(
            tape.value(g),
            &Matrix::from_rows(&[&[5.0, 6.0], &[3.0, 4.0], &[1.0, 2.0]])
        );
    }

    #[test]
    fn l1_loss_value() {
        let mut tape = Tape::new();
        let x = tape.input(Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.0]]));
        let loss = tape.l1_loss(x, &Matrix::zeros(2, 2));
        assert!((tape.value(loss).get(0, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn weighted_l1_drops_zero_rows() {
        let mut tape = Tape::new();
        let x = tape.input(Matrix::from_rows(&[&[10.0], &[2.0]]));
        let loss = tape.l1_loss_weighted(x, &Matrix::zeros(2, 1), vec![0.0, 1.0]);
        assert!((tape.value(loss).get(0, 0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn unused_params_get_no_grad() {
        let mut params = Params::new();
        let w = params.register("w", Matrix::full(1, 1, 2.0));
        let unused = params.register("unused", Matrix::full(1, 1, 3.0));
        let mut tape = Tape::new();
        let wv = tape.param(&params, w);
        let _uv = tape.param(&params, unused);
        let loss = tape.l1_loss(wv, &Matrix::zeros(1, 1));
        let grads = tape.backward(loss);
        assert!(grads.get(w).is_some());
        assert!(grads.get(unused).is_none());
    }
}
