//! Dense row-major `f32` matrix — the single tensor type of the autograd
//! engine. Circuits batch nodes per logic level, so everything the model
//! computes is a 2-D `(rows = nodes/edges, cols = features)` array.

use std::fmt;

/// A dense row-major matrix of `f32`.
///
/// # Example
/// ```
/// use deepseq_nn::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::eye(2);
/// let c = a.matmul(&b);
/// assert_eq!(c.get(1, 0), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// The identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Builds from row slices.
    ///
    /// # Panics
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds element-wise from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Sets element at `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// A view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self × other`, dispatched through the process-wide
    /// default [`Kernel`](crate::Kernel) (naive unless `DEEPSEQ_KERNEL`
    /// overrides it — see [`crate::kernels`]).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        crate::kernels::Kernel::global().matmul(self, other)
    }

    /// Reshapes to `rows×cols` and zero-fills, reusing the existing
    /// allocation when it is large enough. This is what lets the tape-free
    /// inference path in `deepseq-serve` run on preallocated scratch
    /// buffers instead of allocating per level.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Writes `self × other` into `out` (reshaped via [`Matrix::reset`]),
    /// reusing `out`'s allocation. Bit-identical to [`Matrix::matmul`];
    /// dispatched through the same process-wide default
    /// [`Kernel`](crate::Kernel).
    ///
    /// # Panics
    /// Panics on dimension mismatch or if `out` aliases an operand.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        crate::kernels::Kernel::global().matmul_into(self, other, out);
    }

    /// `selfᵀ × other` without materializing the transpose (dispatched, see
    /// [`Matrix::matmul`]).
    ///
    /// # Panics
    /// Panics if row counts differ.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        crate::kernels::Kernel::global().t_matmul(self, other)
    }

    /// `self × otherᵀ` without materializing the transpose (dispatched, see
    /// [`Matrix::matmul`]).
    ///
    /// # Panics
    /// Panics if column counts differ.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        crate::kernels::Kernel::global().matmul_t(self, other)
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise binary zip into a new matrix.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Adds `other` in place.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Broadcast-adds a `1×c` bias row to every row in place.
    ///
    /// # Panics
    /// Panics if `row` is not `1×cols`.
    pub fn add_row_assign(&mut self, row: &Matrix) {
        let c = self.cols;
        assert_eq!(row.shape(), (1, c), "add_row_assign needs 1x{c}");
        for r in 0..self.rows {
            for (o, &b) in self.row_mut(r).iter_mut().zip(row.row(0)) {
                *o += b;
            }
        }
    }

    /// Scales in place.
    pub fn scale_assign(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean absolute value of all elements.
    pub fn mean_abs(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|x| x.abs()).sum::<f32>() / self.data.len() as f32
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:+.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let b = Matrix::from_fn(3, 4, |r, c| (r + c) as f32 * 0.5);
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let b = Matrix::from_fn(4, 2, |r, c| (r + c) as f32 * 0.5);
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        assert_eq!(a.matmul(&Matrix::eye(4)), a);
        assert_eq!(Matrix::eye(4).matmul(&a), a);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn map_zip_ops() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.map(f32::abs), Matrix::from_rows(&[&[1.0, 2.0]]));
        assert_eq!(a.zip(&b, |x, y| x + y), Matrix::from_rows(&[&[4.0, 2.0]]));
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, -4.0]]);
        assert_eq!(a.sum(), -2.0);
        assert_eq!(a.mean_abs(), 2.5);
        assert!((a.norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn row_access() {
        let mut a = Matrix::zeros(2, 3);
        a.row_mut(1).copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(a.row(1), &[1.0, 2.0, 3.0]);
        assert_eq!(a.get(1, 2), 3.0);
    }

    #[test]
    fn from_vec_checks_len() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(1, 1), 4.0);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_wrong_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn display_not_empty() {
        let m = Matrix::zeros(1, 1);
        assert!(!m.to_string().is_empty());
    }
}
