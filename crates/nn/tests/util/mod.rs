//! Shared harness for the nn integration suites: the numerics assertion
//! helpers backing the two-mode contract, and the deterministic operand
//! generators every kernel/gradcheck property draws from.
//!
//! Comparison primitives themselves live in `deepseq_nn::numerics` (they
//! are part of the library's public contract surface); this module wraps
//! them in panic-on-failure assertions and re-exports them so test files
//! have a single import point. Each integration test binary compiles its
//! own copy, so helpers unused by one binary are expected.

#![allow(dead_code)]

use deepseq_nn::Matrix;

#[allow(unused_imports)] // each test binary uses a different subset
pub use deepseq_nn::numerics::{close_rel, max_rel_err, max_ulp_distance, ulp_distance};

/// Assert every element of `got` is within relative error `eps` of `want`
/// (denominator clamped to 1; see [`deepseq_nn::numerics::rel_err`]).
/// Panics with the first offending element, both values and the observed
/// error.
#[track_caller]
pub fn assert_close_rel(got: &[f32], want: &[f32], eps: f32) {
    if let Err(msg) = close_rel(got, want, eps) {
        panic!("not close (eps {eps:e}): {msg}");
    }
}

/// [`assert_close_rel`] over whole matrices, checking the shape first.
#[track_caller]
pub fn assert_matrices_close_rel(got: &Matrix, want: &Matrix, eps: f32) {
    assert_eq!(got.shape(), want.shape(), "shape mismatch");
    assert_close_rel(got.data(), want.data(), eps);
}

/// Deterministic xorshift over a proptest-supplied seed, for deriving
/// random shapes *and* values from one input (the vendored proptest has no
/// `flat_map`).
pub struct SeedRng(pub u64);

impl SeedRng {
    pub fn next(&mut self, bound: usize) -> usize {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        (self.0.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as usize % bound.max(1)
    }

    /// A dimension in `1..=4`.
    pub fn dim(&mut self) -> usize {
        1 + self.next(4)
    }

    /// Mix exact zeros (exercising the naive kernel's zero-skip), exact
    /// small integers and awkward fractions.
    pub fn value(&mut self) -> f32 {
        match self.next(6) {
            0 => 0.0,
            1 => -(self.next(4) as f32),
            2 => 1.0 / (1 + self.next(100)) as f32,
            _ => (self.next(2001) as f32 - 1000.0) * 1e-3,
        }
    }

    /// A value in roughly `[-1, 1]` drawn uniformly (no exact-zero spikes)
    /// — for finite-difference gradient checks, where repeated exact
    /// values make the numeric derivative degenerate.
    pub fn smooth_value(&mut self) -> f32 {
        (self.next(2001) as f32 - 1000.0) * 1e-3
    }

    /// A value with `|v| ∈ [0.2, 1.2]` — bounded away from zero, for ops
    /// with a kink at the origin (`relu`).
    pub fn value_off_zero(&mut self) -> f32 {
        let v = 0.2 + self.next(1001) as f32 * 1e-3;
        if self.next(2) == 0 {
            v
        } else {
            -v
        }
    }

    /// A matrix of [`SeedRng::smooth_value`]s.
    pub fn matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| self.smooth_value())
    }

    /// Non-decreasing segment assignment of `len` rows into `num` segments,
    /// every segment nonempty (`len >= num`): row `i` lands in segment
    /// `i·num/len`, which covers uneven segment sizes deterministically.
    pub fn segments(&mut self, len: usize, num: usize) -> Vec<usize> {
        let _ = self.next(2); // advance the stream so shapes downstream vary
        (0..len).map(|i| i * num / len).collect()
    }
}

/// Random GEMM operand pair: degenerate shapes (empty, `1×N`, `N×1`),
/// blocked-tile-aligned shapes, arbitrary in-between sizes, and shapes
/// large enough to clear the parallel fan-out threshold.
pub fn gemm_operands(seed: u64) -> (Matrix, Matrix) {
    let mut rng = SeedRng(seed | 1);
    let (m, k, n) = match rng.next(6) {
        0 => (rng.next(3), rng.next(13), rng.next(13)), // may be empty
        1 => (1, 1 + rng.next(24), 1 + rng.next(24)),   // 1×N
        2 => (1 + rng.next(24), 1 + rng.next(24), 1),   // N×1
        3 => (
            8 * (1 + rng.next(4)),
            8 * (1 + rng.next(4)),
            8 * (1 + rng.next(4)),
        ), // aligned
        4 => (64 + rng.next(120), 24 + rng.next(40), 24 + rng.next(40)), // parallel-scale (≥ PAR_MIN_FLOPS)
        _ => (1 + rng.next(40), 1 + rng.next(40), 1 + rng.next(40)),
    };
    let a = Matrix::from_fn(m, k, |_, _| rng.value());
    let b = Matrix::from_fn(k, n, |_, _| rng.value());
    (a, b)
}

/// Random operands for the transpose products: `a (m×k)`, `t_b (m×n)` for
/// `aᵀ·b`, and `bt_b (j×k)` for `a·bᵀ` — shapes include empty and 1-wide.
pub fn transpose_operands(seed: u64) -> (Matrix, Matrix, Matrix) {
    let mut rng = SeedRng(seed | 1);
    let (m, k, n, j) = match rng.next(5) {
        0 => (rng.next(3), rng.next(8), rng.next(8), rng.next(8)),
        1 => (1, 1 + rng.next(16), 1 + rng.next(16), 1),
        2 => (
            // Parallel-scale: output rows ≥ 2·PAR_MIN_ROWS, flops over the
            // fan-out threshold for both transpose products.
            32 + rng.next(64),
            48 + rng.next(64),
            48 + rng.next(64),
            48 + rng.next(64),
        ),
        _ => (
            1 + rng.next(24),
            1 + rng.next(24),
            1 + rng.next(24),
            1 + rng.next(24),
        ),
    };
    let a = Matrix::from_fn(m, k, |_, _| rng.value());
    let t_b = Matrix::from_fn(m, n, |_, _| rng.value());
    let bt_b = Matrix::from_fn(j, k, |_, _| rng.value());
    (a, t_b, bt_b)
}

/// Random fused-gate operands `x (m×k)`, `w (k×d)`, `h (m×e)`, `u (e×d)`,
/// `bias (1×d)`.
pub fn gate_operands(seed: u64) -> (Matrix, Matrix, Matrix, Matrix, Matrix) {
    let mut rng = SeedRng(seed | 1);
    let m = 1 + rng.next(20);
    let k = 1 + rng.next(20);
    let e = 1 + rng.next(12);
    let d = 1 + rng.next(20);
    let x = Matrix::from_fn(m, k, |_, _| rng.value());
    let w = Matrix::from_fn(k, d, |_, _| rng.value());
    let h = Matrix::from_fn(m, e, |_, _| rng.value());
    let u = Matrix::from_fn(e, d, |_, _| rng.value());
    let bias = Matrix::from_fn(1, d, |_, _| rng.value());
    (x, w, h, u, bias)
}
