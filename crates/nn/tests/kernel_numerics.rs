//! The fast-mode half of the two-mode numerics contract, property-tested.
//!
//! [`Kernel::Simd`] deliberately breaks bitwise equality with the
//! reference kernels (fused multiply-adds round once, the bitwise kernels
//! round twice), so its contract is stated in *bounds* instead:
//!
//! * **Accuracy** — every product family (`matmul`, `t_matmul`,
//!   `matmul_t`, the fused gate and linear entry points) stays within
//!   `1e-5` of the naive kernel in the backward-error sense: per output
//!   element, `|simd − naive| ≤ 1e-5 · max(1, Σₖ|aᵢₖ||bₖⱼ|)`. The scale
//!   is the same contraction over absolute values — the quantity the
//!   rounding of *either* side is actually proportional to — so the bound
//!   stays meaningful where cancellation drives the output near zero.
//! * **Bounded ULP distance** — on well-conditioned elements (those not
//!   dominated by cancellation, `|naive| ≥ scale/8`) the two kernels land
//!   within [`ULP_CAP`] representable floats of each other. Worst case
//!   analytically: fused-vs-split rounding differs by ≤ `2k` units in the
//!   last place of `scale ≤ 8·|naive|`, i.e. ≤ `8k` ULP of the output —
//!   under the cap for every generated contraction length.
//! * **Self-determinism** — fast mode changes *which* bits, never their
//!   dependence on run or thread count: repeated products and every
//!   `DEEPSEQ_THREADS`-style pool size produce identical bits, on AVX2
//!   hardware and on the portable fallback alike.
//!
//! These properties hold whether or not the host has AVX2 — the portable
//! fused fallback produces the same bits — so this suite never skips.
//! Degenerate shapes (empty, `1×N`, `N×1`) ride along in the shared
//! operand generators.

use deepseq_nn::{Act, Kernel, Matrix, Pool};
use proptest::prelude::*;

mod util;
use util::{gate_operands, gemm_operands, transpose_operands, ulp_distance};

/// The documented fast-mode relative-error bound (backward-error sense).
const REL_EPS: f32 = 1e-5;

/// ULP cap on well-conditioned elements (see module docs for the margin).
const ULP_CAP: u64 = 2048;

/// Elements with `|naive| ≥ scale / CONDITION_CUT` are considered
/// well-conditioned enough for the ULP check.
const CONDITION_CUT: f32 = 8.0;

fn abs_of(m: &Matrix) -> Matrix {
    m.map(f32::abs)
}

/// Check `got` against `want` under the fast-mode contract, where
/// `scale[i]` is the absolute-value contraction for element `i`.
// `!(diff <= bound)` rather than `diff > bound`: NaN must fail the check.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
fn check_contract(got: &Matrix, want: &Matrix, scale: &Matrix, what: &str) -> Result<(), String> {
    if got.shape() != want.shape() {
        return Err(format!(
            "{what}: shape {:?} vs {:?}",
            got.shape(),
            want.shape()
        ));
    }
    for (i, ((&g, &w), &s)) in got
        .data()
        .iter()
        .zip(want.data())
        .zip(scale.data())
        .enumerate()
    {
        let bound = REL_EPS * s.max(1.0);
        if !((g - w).abs() <= bound) {
            return Err(format!(
                "{what} elem {i}: {g:e} vs naive {w:e} (|diff| {:e} > {bound:e}, scale {s:e})",
                (g - w).abs()
            ));
        }
        if w.abs() >= s / CONDITION_CUT {
            let ulp = ulp_distance(g, w);
            if ulp > ULP_CAP {
                return Err(format!(
                    "{what} elem {i}: {g:e} vs naive {w:e} is {ulp} ULP apart (cap {ULP_CAP})"
                ));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simd_matmul_meets_the_contract(seed in any::<u64>()) {
        let (a, b) = gemm_operands(seed);
        let want = Kernel::Naive.matmul(&a, &b);
        let got = Kernel::Simd.matmul(&a, &b);
        let scale = Kernel::Naive.matmul(&abs_of(&a), &abs_of(&b));
        let res = check_contract(&got, &want, &scale, "matmul");
        prop_assert!(res.is_ok(), "{:?}", res);
    }

    #[test]
    fn simd_transpose_products_meet_the_contract(seed in any::<u64>()) {
        let (a, t_b, bt_b) = transpose_operands(seed);
        let want = Kernel::Naive.t_matmul(&a, &t_b);
        let got = Kernel::Simd.t_matmul(&a, &t_b);
        let scale = Kernel::Naive.t_matmul(&abs_of(&a), &abs_of(&t_b));
        let res = check_contract(&got, &want, &scale, "t_matmul");
        prop_assert!(res.is_ok(), "{:?}", res);

        let want = Kernel::Naive.matmul_t(&a, &bt_b);
        let got = Kernel::Simd.matmul_t(&a, &bt_b);
        let scale = Kernel::Naive.matmul_t(&abs_of(&a), &abs_of(&bt_b));
        let res = check_contract(&got, &want, &scale, "matmul_t");
        prop_assert!(res.is_ok(), "{:?}", res);
    }

    #[test]
    fn simd_fused_gate_meets_the_contract(seed in any::<u64>()) {
        // act(x·w + h·u + b) vs the unfused naive composition. Every
        // activation is 1-Lipschitz, so the pre-activation bound (the
        // absolute-value contraction of both products plus |bias|)
        // carries through the nonlinearity unchanged.
        let (x, w, h, u, bias) = gate_operands(seed);
        let mut scale = Kernel::Naive.matmul(&abs_of(&x), &abs_of(&w));
        scale.add_assign(&Kernel::Naive.matmul(&abs_of(&h), &abs_of(&u)));
        scale.add_row_assign(&abs_of(&bias));
        for act in [Act::Identity, Act::Sigmoid, Act::Tanh, Act::Relu] {
            let mut want = Kernel::Naive.matmul(&x, &w);
            want.add_assign(&Kernel::Naive.matmul(&h, &u));
            want.add_row_assign(&bias);
            act.apply(want.data_mut());
            let mut got = Matrix::default();
            let mut tmp = Matrix::default();
            Kernel::Simd.matmul_bias_act(
                &x, &w, Some((&h, &u)), Some(&bias), act, &mut got, &mut tmp,
            );
            let res = check_contract(&got, &want, &scale, "fused gate");
            prop_assert!(res.is_ok(), "{:?}: {:?}", act, res);
        }
    }

    #[test]
    fn simd_linear_act_meets_the_contract(seed in any::<u64>()) {
        let (x, w, _, _, bias_d) = gate_operands(seed);
        let mut scale = Kernel::Naive.matmul(&abs_of(&x), &abs_of(&w));
        scale.add_row_assign(&abs_of(&bias_d));
        let mut want = Kernel::Naive.matmul(&x, &w);
        want.add_row_assign(&bias_d);
        Act::Relu.apply(want.data_mut());
        let mut got = Matrix::default();
        Kernel::Simd.linear_act(&x, &w, Some(&bias_d), Act::Relu, &mut got);
        let res = check_contract(&got, &want, &scale, "linear_act");
        prop_assert!(res.is_ok(), "{:?}", res);
    }

    #[test]
    fn simd_is_self_deterministic_across_runs_and_threads(seed in any::<u64>()) {
        // The bits may differ from naive, but they may not differ from
        // themselves: repeated products and every pool size agree exactly,
        // for every product family.
        let (a, b) = gemm_operands(seed);
        let (ta, t_b, bt_b) = transpose_operands(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
        let serial = Pool::new(1);
        let m_ref = Kernel::Simd.matmul_on(&serial, &a, &b);
        let t_ref = Kernel::Simd.t_matmul_on(&serial, &ta, &t_b);
        let bt_ref = Kernel::Simd.matmul_t_on(&serial, &ta, &bt_b);
        // Repeat on the same pool: no hidden state may leak into the bits.
        prop_assert_eq!(&Kernel::Simd.matmul_on(&serial, &a, &b), &m_ref);
        for threads in [2usize, 4, 7] {
            let pool = Pool::new(threads);
            for (tag, got, want) in [
                ("matmul", Kernel::Simd.matmul_on(&pool, &a, &b), &m_ref),
                ("t_matmul", Kernel::Simd.t_matmul_on(&pool, &ta, &t_b), &t_ref),
                ("matmul_t", Kernel::Simd.matmul_t_on(&pool, &ta, &bt_b), &bt_ref),
            ] {
                prop_assert_eq!(got.shape(), want.shape());
                for (i, (x, y)) in got.data().iter().zip(want.data()).enumerate() {
                    prop_assert_eq!(
                        x.to_bits(), y.to_bits(),
                        "{} t{} elem {}: {} vs {}", tag, threads, i, x, y
                    );
                }
            }
        }
    }
}

/// The acceptance shapes from the bench suite, checked deterministically
/// (not under proptest) so a failure names the exact shape; also logs
/// whether this host runs the AVX2 paths or the portable fallback — the
/// contract holds either way.
#[test]
fn simd_contract_on_bench_shapes() {
    println!(
        "simd acceleration: {}",
        if deepseq_nn::simd_accelerated() {
            "avx2+fma"
        } else {
            "portable fused fallback"
        }
    );
    let mut rng = util::SeedRng(0x5EED);
    for (m, k, n) in [(256, 256, 64), (512, 68, 32), (128, 128, 128)] {
        let a = Matrix::from_fn(m, k, |_, _| rng.value());
        let b = Matrix::from_fn(k, n, |_, _| rng.value());
        let want = Kernel::Naive.matmul(&a, &b);
        let got = Kernel::Simd.matmul(&a, &b);
        let scale = Kernel::Naive.matmul(&abs_of(&a), &abs_of(&b));
        check_contract(&got, &want, &scale, "bench shape").unwrap_or_else(|msg| {
            panic!("{m}x{k}x{n}: {msg}");
        });
    }
}

/// Tiny products resolve to the naive kernel even under `Kernel::Simd`
/// (the fused panels only pay off past the dispatch cutoff), so the
/// degenerate shapes are not just close — they are bitwise-equal.
#[test]
fn simd_degenerate_shapes_are_bitwise_naive() {
    let shapes: [(usize, usize, usize); 4] = [(0, 3, 4), (1, 7, 9), (9, 7, 1), (2, 2, 2)];
    let mut rng = util::SeedRng(7);
    for (m, k, n) in shapes {
        let a = Matrix::from_fn(m, k, |_, _| rng.value());
        let b = Matrix::from_fn(k, n, |_, _| rng.value());
        let want = Kernel::Naive.matmul(&a, &b);
        let got = Kernel::Simd.matmul(&a, &b);
        assert_eq!(got, want, "{m}x{k}x{n}");
    }
}
