//! Finite-difference gradient checks for **every** differentiable tape op,
//! on random small shapes under proptest.
//!
//! Each property builds a loss whose computation routes through exactly the
//! op under test (ending in an L1 loss against a target shifted far enough
//! that the |·| kink is never crossed within the finite-difference epsilon),
//! then compares the analytic gradient of every registered parameter entry
//! against central differences. Ops with their own kinks (`relu`, the
//! `Relu`-activated fused gate) generate inputs bounded away from the kink
//! so the numeric derivative is meaningful.
//!
//! The deterministic per-op unit checks live in `crates/nn/src/tape.rs`;
//! this file is the randomized sweep the training subsystem's correctness
//! rests on — if any backward rule drifts from its forward, the
//! data-parallel trainer in `deepseq-core` would silently optimize the
//! wrong function.

use deepseq_nn::{Act, Matrix, Params, Tape, VarId};
use proptest::prelude::*;

mod util;
use util::{close_rel, SeedRng};

/// Central-difference gradient check over every entry of every registered
/// parameter. Returns the first mismatch as an error message.
fn check_gradients<F>(params: &mut Params, build: F, tol: f32) -> Result<(), String>
where
    F: Fn(&mut Tape, &Params) -> VarId,
{
    let mut tape = Tape::new();
    let loss = build(&mut tape, params);
    let analytic = tape.backward(loss);
    let eps = 1e-2f32;
    let ids: Vec<_> = params.iter().map(|(id, _, _)| id).collect();
    for id in ids {
        let (rows, cols) = params.get(id).shape();
        for r in 0..rows {
            for c in 0..cols {
                let orig = params.get(id).get(r, c);
                params.get_mut(id).set(r, c, orig + eps);
                let mut tp = Tape::new();
                let lp = build(&mut tp, params);
                let fp = tp.value(lp).get(0, 0);
                params.get_mut(id).set(r, c, orig - eps);
                let mut tm = Tape::new();
                let lm = build(&mut tm, params);
                let fm = tm.value(lm).get(0, 0);
                params.get_mut(id).set(r, c, orig);
                let numeric = (fp - fm) / (2.0 * eps);
                let a = analytic.get(id).map_or(0.0, |g| g.get(r, c));
                if let Err(msg) = close_rel(&[a], &[numeric], tol) {
                    return Err(format!("param `{}` ({r},{c}): {msg}", params.name(id)));
                }
            }
        }
    }
    Ok(())
}

/// A target far above anything the graph can produce, so `|pred - target|`
/// never crosses its kink during finite differencing.
fn shifted_target(rng: &mut SeedRng, rows: usize, cols: usize, shift: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.smooth_value() + shift)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn grad_matmul(seed in any::<u64>()) {
        let mut rng = SeedRng(seed | 1);
        let (m, k, n) = (rng.dim(), rng.dim(), rng.dim());
        let x = rng.matrix(m, k);
        let t = shifted_target(&mut rng, m, n, 6.0);
        let mut params = Params::new();
        let w = params.register("w", rng.matrix(k, n));
        let ok = check_gradients(&mut params, move |tape, p| {
            let xv = tape.input(x.clone());
            let wv = tape.param(p, w);
            let y = tape.matmul(xv, wv);
            tape.l1_loss(y, &t)
        }, 5e-2);
        prop_assert!(ok.is_ok(), "{:?}", ok);
    }

    #[test]
    fn grad_add_sub_mul(seed in any::<u64>()) {
        let mut rng = SeedRng(seed | 1);
        let (m, n) = (rng.dim(), rng.dim());
        let t = shifted_target(&mut rng, m, n, 6.0);
        let mut params = Params::new();
        let a = params.register("a", rng.matrix(m, n));
        let b = params.register("b", rng.matrix(m, n));
        let c = params.register("c", rng.matrix(m, n));
        let ok = check_gradients(&mut params, move |tape, p| {
            let av = tape.param(p, a);
            let bv = tape.param(p, b);
            let cv = tape.param(p, c);
            let s = tape.add(av, bv);     // a + b
            let d = tape.sub(s, cv);      // a + b - c
            let prod = tape.mul(d, av);   // (a + b - c) ⊙ a
            tape.l1_loss(prod, &t)
        }, 5e-2);
        prop_assert!(ok.is_ok(), "{:?}", ok);
    }

    #[test]
    fn grad_add_row_and_affine(seed in any::<u64>()) {
        let mut rng = SeedRng(seed | 1);
        let (m, n) = (rng.dim(), rng.dim());
        let alpha = rng.smooth_value() * 2.0;
        let t = shifted_target(&mut rng, m, n, 8.0);
        let mut params = Params::new();
        let a = params.register("a", rng.matrix(m, n));
        let b = params.register("bias", rng.matrix(1, n));
        let ok = check_gradients(&mut params, move |tape, p| {
            let av = tape.param(p, a);
            let bv = tape.param(p, b);
            let y = tape.add_row(av, bv);
            let y = tape.affine(y, alpha, 0.25);
            tape.l1_loss(y, &t)
        }, 5e-2);
        prop_assert!(ok.is_ok(), "{:?}", ok);
    }

    #[test]
    fn grad_sigmoid_tanh(seed in any::<u64>()) {
        let mut rng = SeedRng(seed | 1);
        let (m, n) = (rng.dim(), rng.dim());
        let t = shifted_target(&mut rng, m, n, 4.0);
        let mut params = Params::new();
        let a = params.register("a", rng.matrix(m, n));
        let b = params.register("b", rng.matrix(m, n));
        let ok = check_gradients(&mut params, move |tape, p| {
            let av = tape.param(p, a);
            let bv = tape.param(p, b);
            let s = tape.sigmoid(av);
            let h = tape.tanh(bv);
            let y = tape.mul(s, h);
            tape.l1_loss(y, &t)
        }, 5e-2);
        prop_assert!(ok.is_ok(), "{:?}", ok);
    }

    #[test]
    fn grad_relu_off_kink(seed in any::<u64>()) {
        let mut rng = SeedRng(seed | 1);
        let (m, n) = (rng.dim(), rng.dim());
        // Inputs bounded away from the relu kink at zero: |v| ≥ 0.2 while
        // the FD epsilon is 1e-2, so the subgradient is well-defined at
        // every probe.
        let a0 = Matrix::from_fn(m, n, |_, _| rng.value_off_zero());
        let t = shifted_target(&mut rng, m, n, 4.0);
        let mut params = Params::new();
        let a = params.register("a", a0);
        let ok = check_gradients(&mut params, move |tape, p| {
            let av = tape.param(p, a);
            let y = tape.relu(av);
            tape.l1_loss(y, &t)
        }, 5e-2);
        prop_assert!(ok.is_ok(), "{:?}", ok);
    }

    #[test]
    fn grad_concat_cols(seed in any::<u64>()) {
        let mut rng = SeedRng(seed | 1);
        let (m, ca, cb) = (rng.dim(), rng.dim(), rng.dim());
        let t = shifted_target(&mut rng, m, ca + cb, 6.0);
        let mut params = Params::new();
        let a = params.register("a", rng.matrix(m, ca));
        let b = params.register("b", rng.matrix(m, cb));
        let ok = check_gradients(&mut params, move |tape, p| {
            let av = tape.param(p, a);
            let bv = tape.param(p, b);
            let y = tape.concat_cols(av, bv);
            tape.l1_loss(y, &t)
        }, 5e-2);
        prop_assert!(ok.is_ok(), "{:?}", ok);
    }

    #[test]
    fn grad_gather_rows_with_repeats(seed in any::<u64>()) {
        let mut rng = SeedRng(seed | 1);
        let (r, c) = (rng.dim(), rng.dim());
        let gathered = 2 + rng.next(5); // 2..=6 rows, repeats likely
        let rows: Vec<usize> = (0..gathered).map(|_| rng.next(r)).collect();
        let t = shifted_target(&mut rng, gathered, c, 6.0);
        let mut params = Params::new();
        let e = params.register("e", rng.matrix(r, c));
        let ok = check_gradients(&mut params, move |tape, p| {
            let ev = tape.param(p, e);
            let sources: Vec<_> = rows.iter().map(|&row| (ev, row)).collect();
            let y = tape.gather_rows(sources);
            tape.l1_loss(y, &t)
        }, 5e-2);
        prop_assert!(ok.is_ok(), "{:?}", ok);
    }

    #[test]
    fn grad_segment_sum(seed in any::<u64>()) {
        let mut rng = SeedRng(seed | 1);
        let c = rng.dim();
        let num_segs = rng.dim();
        let m = num_segs + rng.next(6); // at least one row per segment
        let segs = rng.segments(m, num_segs);
        let t = shifted_target(&mut rng, num_segs, c, 8.0);
        let mut params = Params::new();
        let e = params.register("e", rng.matrix(m, c));
        let ok = check_gradients(&mut params, move |tape, p| {
            let ev = tape.param(p, e);
            let y = tape.segment_sum(ev, segs.clone(), num_segs);
            tape.l1_loss(y, &t)
        }, 5e-2);
        prop_assert!(ok.is_ok(), "{:?}", ok);
    }

    #[test]
    fn grad_segment_softmax(seed in any::<u64>()) {
        let mut rng = SeedRng(seed | 1);
        let num_segs = rng.dim();
        let m = num_segs + rng.next(6);
        let segs = rng.segments(m, num_segs);
        let t = shifted_target(&mut rng, m, 1, 4.0);
        let mut params = Params::new();
        let s = params.register("scores", rng.matrix(m, 1));
        let ok = check_gradients(&mut params, move |tape, p| {
            let sv = tape.param(p, s);
            let alpha = tape.segment_softmax(sv, segs.clone());
            tape.l1_loss(alpha, &t)
        }, 5e-2);
        prop_assert!(ok.is_ok(), "{:?}", ok);
    }

    #[test]
    fn grad_mul_col(seed in any::<u64>()) {
        let mut rng = SeedRng(seed | 1);
        let (m, c) = (rng.dim(), rng.dim());
        let t = shifted_target(&mut rng, m, c, 6.0);
        let mut params = Params::new();
        let a = params.register("a", rng.matrix(m, c));
        let col = params.register("col", rng.matrix(m, 1));
        let ok = check_gradients(&mut params, move |tape, p| {
            let av = tape.param(p, a);
            let cv = tape.param(p, col);
            let y = tape.mul_col(av, cv);
            tape.l1_loss(y, &t)
        }, 5e-2);
        prop_assert!(ok.is_ok(), "{:?}", ok);
    }

    #[test]
    fn grad_fused_gate_smooth_acts(seed in any::<u64>()) {
        // Identity / Sigmoid / Tanh are smooth everywhere, so unrestricted
        // small inputs are safe. All five operands are parameters — this
        // checks the dx/dw/dh/du/db backward paths at once.
        let mut rng = SeedRng(seed | 1);
        let (m, k, e, d) = (rng.dim(), rng.dim(), rng.dim(), rng.dim());
        let act = [Act::Identity, Act::Sigmoid, Act::Tanh][rng.next(3)];
        let t = shifted_target(&mut rng, m, d, 8.0);
        let mut params = Params::new();
        let x = params.register("x", rng.matrix(m, k));
        let w = params.register("w", rng.matrix(k, d));
        let h = params.register("h", rng.matrix(m, e));
        let u = params.register("u", rng.matrix(e, d));
        let b = params.register("b", rng.matrix(1, d));
        let ok = check_gradients(&mut params, move |tape, p| {
            let xv = tape.param(p, x);
            let wv = tape.param(p, w);
            let hv = tape.param(p, h);
            let uv = tape.param(p, u);
            let bv = tape.param(p, b);
            let y = tape.fused_gate(xv, wv, hv, uv, Some(bv), act);
            tape.l1_loss(y, &t)
        }, 8e-2);
        prop_assert!(ok.is_ok(), "{act:?}: {:?}", ok);
    }

    #[test]
    fn grad_fused_gate_relu_off_kink(seed in any::<u64>()) {
        // Relu kinks where the pre-activation crosses zero. Operands are
        // scaled to [-0.3, 0.3] (dims ≤ 4 bound |x·w + h·u| by 0.72) and
        // the bias is pushed to |b| ∈ [1.0, 2.0], so every pre-activation
        // entry stays ≥ 0.28 away from zero throughout the FD probes.
        let mut rng = SeedRng(seed | 1);
        let (m, k, e, d) = (rng.dim(), rng.dim(), rng.dim(), rng.dim());
        let small = |rng: &mut SeedRng, r: usize, c: usize| {
            Matrix::from_fn(r, c, |_, _| rng.smooth_value() * 0.3)
        };
        let x0 = small(&mut rng, m, k);
        let w0 = small(&mut rng, k, d);
        let h0 = small(&mut rng, m, e);
        let u0 = small(&mut rng, e, d);
        let b0 = Matrix::from_fn(1, d, |_, _| {
            let v = 1.0 + rng.next(1001) as f32 * 1e-3;
            if rng.next(2) == 0 { v } else { -v }
        });
        let t = shifted_target(&mut rng, m, d, 8.0);
        let mut params = Params::new();
        let x = params.register("x", x0);
        let w = params.register("w", w0);
        let h = params.register("h", h0);
        let u = params.register("u", u0);
        let b = params.register("b", b0);
        let ok = check_gradients(&mut params, move |tape, p| {
            let xv = tape.param(p, x);
            let wv = tape.param(p, w);
            let hv = tape.param(p, h);
            let uv = tape.param(p, u);
            let bv = tape.param(p, b);
            let y = tape.fused_gate(xv, wv, hv, uv, Some(bv), Act::Relu);
            tape.l1_loss(y, &t)
        }, 8e-2);
        prop_assert!(ok.is_ok(), "{:?}", ok);
    }

    #[test]
    fn grad_fused_gate_without_bias(seed in any::<u64>()) {
        let mut rng = SeedRng(seed | 1);
        let (m, k, e, d) = (rng.dim(), rng.dim(), rng.dim(), rng.dim());
        let t = shifted_target(&mut rng, m, d, 8.0);
        let mut params = Params::new();
        let x = params.register("x", rng.matrix(m, k));
        let w = params.register("w", rng.matrix(k, d));
        let h = params.register("h", rng.matrix(m, e));
        let u = params.register("u", rng.matrix(e, d));
        let ok = check_gradients(&mut params, move |tape, p| {
            let xv = tape.param(p, x);
            let wv = tape.param(p, w);
            let hv = tape.param(p, h);
            let uv = tape.param(p, u);
            let y = tape.fused_gate(xv, wv, hv, uv, None, Act::Tanh);
            tape.l1_loss(y, &t)
        }, 8e-2);
        prop_assert!(ok.is_ok(), "{:?}", ok);
    }

    #[test]
    fn grad_weighted_l1_and_add_scalars(seed in any::<u64>()) {
        let mut rng = SeedRng(seed | 1);
        let (m, n) = (rng.dim(), rng.dim());
        // Nonnegative row weights with zeros possible (dropped rows must
        // contribute exactly zero gradient); keep at least one row live so
        // the loss is not constant.
        let mut weights: Vec<f32> = (0..m).map(|_| (rng.next(4) as f32) * 0.5).collect();
        weights[0] = weights[0].max(1.0);
        let t1 = shifted_target(&mut rng, m, n, 6.0);
        let t2 = shifted_target(&mut rng, m, n, 6.0);
        let mut params = Params::new();
        let a = params.register("a", rng.matrix(m, n));
        let ok = check_gradients(&mut params, move |tape, p| {
            let av = tape.param(p, a);
            let l1 = tape.l1_loss_weighted(av, &t1, weights.clone());
            let l2 = tape.l1_loss(av, &t2);
            let l2 = tape.affine(l2, 0.5, 0.0);
            tape.add_scalars(vec![l1, l2])
        }, 5e-2);
        prop_assert!(ok.is_ok(), "{:?}", ok);
    }
}
