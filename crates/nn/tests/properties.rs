//! Property-based tests for the autograd engine: every differentiable op is
//! checked against central finite differences on random inputs, algebraic
//! invariants of the matrix type are verified, and every GEMM kernel variant
//! is held to the naive kernel's bit patterns across randomized shapes
//! (including the degenerate `1×N` / `N×1` / empty cases).

use deepseq_nn::{Act, Kernel, Matrix, Params, ParamsError, Pool, Tape};
use proptest::prelude::*;

mod util;
use util::{close_rel, gate_operands, gemm_operands, transpose_operands};

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0f32..1.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Central-difference gradient check for a single registered parameter.
fn check_param_gradient<F>(params: &mut Params, build: F, tol: f32) -> Result<(), String>
where
    F: Fn(&mut Tape, &Params) -> deepseq_nn::VarId,
{
    let mut tape = Tape::new();
    let loss = build(&mut tape, params);
    let grads = tape.backward(loss);
    let ids: Vec<_> = params.iter().map(|(id, _, _)| id).collect();
    let eps = 1e-2f32;
    for id in ids {
        let (rows, cols) = params.get(id).shape();
        for r in 0..rows {
            for c in 0..cols {
                let orig = params.get(id).get(r, c);
                params.get_mut(id).set(r, c, orig + eps);
                let mut tp = Tape::new();
                let lp = build(&mut tp, params);
                let fp = tp.value(lp).get(0, 0);
                params.get_mut(id).set(r, c, orig - eps);
                let mut tm = Tape::new();
                let lm = build(&mut tm, params);
                let fm = tm.value(lm).get(0, 0);
                params.get_mut(id).set(r, c, orig);
                let numeric = (fp - fm) / (2.0 * eps);
                let analytic = grads.get(id).map_or(0.0, |g| g.get(r, c));
                if let Err(msg) = close_rel(&[analytic], &[numeric], tol) {
                    return Err(format!("({r},{c}): {msg}"));
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_transpose_identities(a in arb_matrix(3, 4), b in arb_matrix(3, 5)) {
        // aᵀ·b computed directly matches the explicit transpose.
        let direct = a.t_matmul(&b);
        let explicit = a.transpose().matmul(&b);
        let res = close_rel(direct.data(), explicit.data(), 1e-5);
        prop_assert!(res.is_ok(), "{:?}", res);
    }

    #[test]
    fn matmul_is_linear_in_scale(a in arb_matrix(2, 3), b in arb_matrix(3, 2), s in -2.0f32..2.0) {
        let scaled_a = a.map(|x| s * x);
        let left = scaled_a.matmul(&b);
        let right = a.matmul(&b).map(|x| s * x);
        let res = close_rel(left.data(), right.data(), 1e-4);
        prop_assert!(res.is_ok(), "{:?}", res);
    }

    #[test]
    fn transpose_is_involution(a in arb_matrix(4, 3)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn grad_check_sigmoid_chain(x in arb_matrix(2, 3), w in arb_matrix(3, 2), t in arb_matrix(2, 2)) {
        // Targets shifted beyond the prediction range: the L1 |x| kink must
        // not be crossed within the finite-difference epsilon, or the
        // numeric gradient is meaningless there.
        let t = t.map(|v| v + 2.5);
        let mut params = Params::new();
        let wid = params.register("w", w);
        let ok = check_param_gradient(&mut params, move |tape, p| {
            let xv = tape.input(x.clone());
            let wv = tape.param(p, wid);
            let h = tape.matmul(xv, wv);
            let s = tape.sigmoid(h);
            tape.l1_loss(s, &t)
        }, 5e-2);
        prop_assert!(ok.is_ok(), "{:?}", ok);
    }

    #[test]
    fn grad_check_tanh_mul(a in arb_matrix(2, 2), b in arb_matrix(2, 2), t in arb_matrix(2, 2)) {
        let t = t.map(|v| v + 2.5); // keep the L1 kink out of FD range
        let mut params = Params::new();
        let aid = params.register("a", a);
        let bid = params.register("b", b);
        let ok = check_param_gradient(&mut params, move |tape, p| {
            let av = tape.param(p, aid);
            let bv = tape.param(p, bid);
            let m = tape.mul(av, bv);
            let s = tape.tanh(m);
            tape.l1_loss(s, &t)
        }, 5e-2);
        prop_assert!(ok.is_ok(), "{:?}", ok);
    }

    #[test]
    fn grad_check_segment_pipeline(e in arb_matrix(4, 3), w in arb_matrix(3, 1), t in arb_matrix(2, 3)) {
        let t = t.map(|v| v + 2.5); // keep the L1 kink out of FD range
        let mut params = Params::new();
        let eid = params.register("e", e);
        let wid = params.register("w", w);
        let ok = check_param_gradient(&mut params, move |tape, p| {
            let ev = tape.param(p, eid);
            let gathered = tape.gather_rows(vec![(ev, 0), (ev, 1), (ev, 2), (ev, 3)]);
            let wv = tape.param(p, wid);
            let scores = tape.matmul(gathered, wv);
            let segs = vec![0, 0, 1, 1];
            let alpha = tape.segment_softmax(scores, segs.clone());
            let weighted = tape.mul_col(gathered, alpha);
            let summed = tape.segment_sum(weighted, segs, 2);
            tape.l1_loss(summed, &t)
        }, 8e-2);
        prop_assert!(ok.is_ok(), "{:?}", ok);
    }

    #[test]
    fn segment_softmax_sums_to_one(scores in arb_matrix(6, 1)) {
        let mut tape = Tape::new();
        let s = tape.input(scores);
        let segs = vec![0, 0, 0, 1, 1, 2];
        let alpha = tape.segment_softmax(s, segs.clone());
        let v = tape.value(alpha);
        let mut sums = [0.0f32; 3];
        for (i, &seg) in segs.iter().enumerate() {
            sums[seg] += v.get(i, 0);
        }
        for sum in sums {
            prop_assert!((sum - 1.0).abs() < 1e-5, "segment sum {sum}");
        }
        // All weights positive.
        prop_assert!(v.data().iter().all(|&w| w > 0.0));
    }

    #[test]
    fn l1_loss_is_nonnegative_and_zero_on_match(x in arb_matrix(3, 2)) {
        let mut tape = Tape::new();
        let xv = tape.input(x.clone());
        let loss = tape.l1_loss(xv, &x);
        prop_assert_eq!(tape.value(loss).get(0, 0), 0.0);
        let shifted = x.map(|v| v + 0.5);
        let mut tape2 = Tape::new();
        let xv2 = tape2.input(x.clone());
        let loss2 = tape2.l1_loss(xv2, &shifted);
        prop_assert!((tape2.value(loss2).get(0, 0) - 0.5).abs() < 1e-5);
    }

    #[test]
    fn adam_reduces_simple_loss(target in -2.0f32..2.0) {
        use deepseq_nn::Adam;
        let mut params = Params::new();
        let w = params.register("w", Matrix::zeros(1, 1));
        let t = Matrix::full(1, 1, target);
        let mut opt = Adam::new(0.05);
        let loss_of = |params: &Params| {
            let mut tape = Tape::new();
            let wv = tape.param(params, w);
            let loss = tape.l1_loss(wv, &t);
            (tape.value(loss).get(0, 0), tape, loss)
        };
        let (initial, _, _) = loss_of(&params);
        for _ in 0..100 {
            let (_, tape, loss) = loss_of(&params);
            let grads = tape.backward(loss);
            opt.step(&mut params, &grads);
        }
        let (final_loss, _, _) = loss_of(&params);
        prop_assert!(final_loss <= initial + 1e-6);
        prop_assert!(final_loss < 0.1 || initial < 0.1, "loss {initial} -> {final_loss}");
    }

    #[test]
    fn binary_checkpoint_roundtrips_bytes_exactly(store in arb_params()) {
        // bytes → values → bytes: a second serialization of the restored
        // store reproduces the first byte-for-byte.
        let bytes = store.save_binary();
        let mut restored = shapes_of(&store);
        restored.load_binary(&bytes).expect("load own checkpoint");
        for (_, name, value) in store.iter() {
            let id = restored.find(name).expect("name survives");
            prop_assert_eq!(value, restored.get(id), "{}", name);
        }
        prop_assert_eq!(restored.save_binary(), bytes);
    }

    #[test]
    fn binary_checkpoint_rejects_any_truncation(store in arb_params(), frac in 0.0f32..1.0) {
        let bytes = store.save_binary();
        let cut = ((bytes.len() as f32 * frac) as usize).min(bytes.len().saturating_sub(1));
        let mut target = shapes_of(&store);
        let err = target.load_binary(&bytes[..cut]);
        prop_assert!(err.is_err(), "truncation at {} accepted", cut);
        // The error is typed, not a panic, and names a decoding failure.
        prop_assert!(matches!(
            err.unwrap_err(),
            ParamsError::Truncated { .. }
                | ParamsError::BadMagic
                | ParamsError::Corrupt { .. }
                | ParamsError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn text_and_binary_checkpoints_restore_identical_values(store in arb_params()) {
        let mut via_text = shapes_of(&store);
        via_text.load_from_string(&store.save_to_string()).expect("text load");
        let mut via_binary = shapes_of(&store);
        via_binary.load_binary(&store.save_binary()).expect("binary load");
        for (_, name, original) in store.iter() {
            let t = via_text.get(via_text.find(name).expect("text name"));
            let b = via_binary.get(via_binary.find(name).expect("binary name"));
            prop_assert_eq!(t, b, "{}: text and binary restores diverge", name);
            prop_assert_eq!(original, t, "{}: text restore is lossy", name);
        }
    }

    #[test]
    fn kernels_agree_with_naive_to_zero_ulp(seed in any::<u64>()) {
        // Every bitwise-mode kernel variant must reproduce the naive
        // kernel's exact bit patterns — accumulation order is part of the
        // kernel contract, so a kernel switch may never change results.
        // Shapes sweep the degenerate cases (empty, 1×N, N×1) and
        // blocked-aligned sizes. `is_bitwise` keeps `Auto` in the sweep in
        // the default mode and drops it under `DEEPSEQ_KERNEL=simd`, where
        // it resolves to the fused fast path (bounded-error contract,
        // tested in kernel_numerics.rs instead).
        let (a, b) = gemm_operands(seed);
        let reference = Kernel::Naive.matmul(&a, &b);
        for kernel in Kernel::ALL
            .into_iter()
            .chain([Kernel::Auto])
            .filter(|k| k.is_bitwise())
        {
            let got = kernel.matmul(&a, &b);
            prop_assert_eq!(got.shape(), reference.shape());
            for (i, (x, y)) in got.data().iter().zip(reference.data()).enumerate() {
                prop_assert_eq!(
                    x.to_bits(), y.to_bits(),
                    "{} {}x{}x{} elem {}: {} vs {}",
                    kernel.name(), a.rows(), a.cols(), b.cols(), i, x, y
                );
            }
        }
    }

    #[test]
    fn transpose_kernels_agree_with_naive_to_zero_ulp(seed in any::<u64>()) {
        // t_matmul contracts over rows (`aᵀ·b` with matching row counts);
        // matmul_t over columns (`a·bᵀ` with matching column counts).
        let (a, t_b, bt_b) = transpose_operands(seed);
        let t_ref = Kernel::Naive.t_matmul(&a, &t_b);
        let bt_ref = Kernel::Naive.matmul_t(&a, &bt_b);
        for kernel in Kernel::ALL
            .into_iter()
            .chain([Kernel::Auto])
            .filter(|k| k.is_bitwise())
        {
            let got = kernel.t_matmul(&a, &t_b);
            prop_assert_eq!(got.shape(), t_ref.shape());
            for (x, y) in got.data().iter().zip(t_ref.data()) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "t_matmul {}", kernel.name());
            }
            let got = kernel.matmul_t(&a, &bt_b);
            prop_assert_eq!(got.shape(), bt_ref.shape());
            for (x, y) in got.data().iter().zip(bt_ref.data()) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "matmul_t {}", kernel.name());
            }
        }
    }

    #[test]
    fn kernels_bitwise_identical_across_thread_counts(seed in any::<u64>()) {
        // The tentpole determinism contract: row-partitioned parallel GEMM
        // must reproduce the single-threaded bit patterns at every thread
        // count, for every kernel and every product family, across shapes
        // including the degenerate (empty, 1×N, N×1) and parallel-scale
        // cases of the shape generators. This self-determinism holds for
        // `Simd` too — fast mode changes *which* bits, never their
        // dependence on thread count.
        let (a, b) = gemm_operands(seed);
        let (ta, t_b, bt_b) = transpose_operands(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
        let serial = Pool::new(1);
        for kernel in Kernel::ALL
            .into_iter()
            .chain([Kernel::Auto, Kernel::Simd])
        {
            let m_ref = kernel.matmul_on(&serial, &a, &b);
            let t_ref = kernel.t_matmul_on(&serial, &ta, &t_b);
            let bt_ref = kernel.matmul_t_on(&serial, &ta, &bt_b);
            for threads in [2usize, 4, 7] {
                let pool = Pool::new(threads);
                for (tag, got, want) in [
                    ("matmul", kernel.matmul_on(&pool, &a, &b), &m_ref),
                    ("t_matmul", kernel.t_matmul_on(&pool, &ta, &t_b), &t_ref),
                    ("matmul_t", kernel.matmul_t_on(&pool, &ta, &bt_b), &bt_ref),
                ] {
                    prop_assert_eq!(got.shape(), want.shape());
                    for (i, (x, y)) in got.data().iter().zip(want.data()).enumerate() {
                        prop_assert_eq!(
                            x.to_bits(), y.to_bits(),
                            "{} {} t{} elem {}: {} vs {}",
                            tag, kernel.name(), threads, i, x, y
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fused_ops_match_unfused_within_1e5(seed in any::<u64>()) {
        // The fused gate `act(x·w + h·u + b)` must stay within 1e-5 relative
        // error of the unfused naive-kernel composition for every kernel and
        // activation (the implementation is in fact bitwise-equal; the spec
        // bound is what third-party kernels must meet).
        let (x, w, h, u, bias) = gate_operands(seed);
        for act in [Act::Identity, Act::Sigmoid, Act::Tanh, Act::Relu] {
            let mut reference = Kernel::Naive.matmul(&x, &w);
            reference.add_assign(&Kernel::Naive.matmul(&h, &u));
            reference.add_row_assign(&bias);
            act.apply(reference.data_mut());
            for kernel in Kernel::ALL {
                let mut out = Matrix::default();
                let mut tmp = Matrix::default();
                kernel.matmul_bias_act(
                    &x, &w, Some((&h, &u)), Some(&bias), act, &mut out, &mut tmp,
                );
                prop_assert_eq!(out.shape(), reference.shape());
                let res = close_rel(out.data(), reference.data(), 1e-5);
                prop_assert!(res.is_ok(), "{} {:?}: {:?}", kernel.name(), act, res);
            }
        }
    }

    #[test]
    fn fused_gate_tape_op_matches_unfused_ops(seed in any::<u64>()) {
        // The tape's fused node computes the same value the five unfused
        // nodes used to produce, bit for bit.
        let (x, w, h, u, bias) = gate_operands(seed);
        let mut tape = Tape::new();
        let xv = tape.input(x.clone());
        let wv = tape.input(w.clone());
        let hv = tape.input(h.clone());
        let uv = tape.input(u.clone());
        let bv = tape.input(bias.clone());
        let fused = tape.fused_gate(xv, wv, hv, uv, Some(bv), Act::Sigmoid);
        let xw = tape.matmul(xv, wv);
        let hu = tape.matmul(hv, uv);
        let s = tape.add(xw, hu);
        let s = tape.add_row(s, bv);
        let unfused = tape.sigmoid(s);
        let fv = tape.value(fused);
        let uv2 = tape.value(unfused);
        prop_assert_eq!(fv.shape(), uv2.shape());
        for (a, b) in fv.data().iter().zip(uv2.data()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

/// Strategy: a parameter store with 1–4 randomly-shaped, randomly-valued
/// matrices (values include exact and awkward floats).
fn arb_params() -> impl Strategy<Value = Params> {
    (1usize..5, any::<u64>()).prop_map(|(count, seed)| {
        let mut state = seed | 1;
        let mut next = move |bound: usize| -> usize {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as usize % bound.max(1)
        };
        let mut store = Params::new();
        for i in 0..count {
            let rows = 1 + next(5);
            let cols = 1 + next(5);
            let m = Matrix::from_fn(rows, cols, |r, c| {
                // Mix of exact, tiny, negative and subnormal-ish values.
                match next(5) {
                    0 => 0.0,
                    1 => -(r as f32) - c as f32,
                    2 => 1.0 / (1 + next(1000)) as f32,
                    3 => f32::from_bits(next(u32::MAX as usize) as u32 & 0x7F7F_FFFF),
                    _ => next(1000) as f32 * 1e-3,
                }
            });
            store.register(format!("p{i}.w"), m);
        }
        store
    })
}

/// A fresh store with the same names/shapes as `store` but zeroed values —
/// the "already registered model" a checkpoint loads into.
fn shapes_of(store: &Params) -> Params {
    let mut out = Params::new();
    for (_, name, value) in store.iter() {
        out.register(name.to_string(), Matrix::zeros(value.rows(), value.cols()));
    }
    out
}
