//! Property-based tests for the power crate: estimates must stay within
//! probabilistic bounds on random circuits, SAIF must round-trip, and the
//! power model must respect its algebraic structure.

use deepseq_netlist::{NodeId, SeqAig};
use deepseq_power::{
    estimate, parse_saif, write_saif, CellLibrary, ProbabilisticOptions, SaifDocument,
};
use deepseq_sim::{PiStimulus, Workload};
use proptest::prelude::*;

fn arb_seq_aig() -> impl Strategy<Value = SeqAig> {
    (1usize..5, 0usize..4, 1usize..30, any::<u64>()).prop_map(|(n_pi, n_ff, n_gate, seed)| {
        let mut state = seed | 1;
        let mut next = move |bound: usize| -> usize {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as usize % bound.max(1)
        };
        let mut aig = SeqAig::new("prop");
        for i in 0..n_pi {
            aig.add_pi(format!("pi{i}"));
        }
        let mut ffs = Vec::new();
        for i in 0..n_ff {
            ffs.push(aig.add_ff(format!("ff{i}"), next(2) == 1));
        }
        for _ in 0..n_gate {
            let len = aig.len();
            if next(3) == 0 {
                aig.add_not(NodeId(next(len) as u32));
            } else {
                aig.add_and(NodeId(next(len) as u32), NodeId(next(len) as u32));
            }
        }
        let len = aig.len();
        for &ff in &ffs {
            aig.connect_ff(ff, NodeId(next(len) as u32)).unwrap();
        }
        aig.set_output(NodeId((len - 1) as u32), "out");
        aig
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn probabilistic_estimates_stay_feasible(aig in arb_seq_aig(), p1 in 0.0f64..1.0) {
        let w = Workload::uniform(aig.num_pis(), p1);
        let est = estimate(&aig, &w, &ProbabilisticOptions::default());
        for v in 0..aig.len() {
            prop_assert!((0.0..=1.0).contains(&est.p1[v]), "p1[{v}] = {}", est.p1[v]);
            prop_assert!(est.p01[v] >= 0.0);
            // Feasibility: a signal cannot rise more often than it is low
            // and high (up to fp rounding).
            prop_assert!(est.p01[v] <= est.p1[v].min(1.0 - est.p1[v]) + 1e-9,
                "p01[{v}] = {} infeasible for p1 {}", est.p01[v], est.p1[v]);
        }
    }

    #[test]
    fn probabilistic_is_deterministic(aig in arb_seq_aig()) {
        let w = Workload::uniform(aig.num_pis(), 0.5);
        let a = estimate(&aig, &w, &ProbabilisticOptions::default());
        let b = estimate(&aig, &w, &ProbabilisticOptions::default());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn saif_roundtrip_random_docs(
        nets in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..20),
        duration in 1u64..1_000_000,
    ) {
        let mut doc = SaifDocument::new(duration);
        for (i, (p1, tc)) in nets.iter().enumerate() {
            doc.add_net(format!("net_{i}"), *p1, *tc);
        }
        let text = write_saif(&doc, "prop");
        let parsed = parse_saif(&text).expect("writer output must parse");
        prop_assert_eq!(doc, parsed);
    }

    #[test]
    fn power_is_monotone_in_toggle_rates(
        rates in proptest::collection::vec(0.0f64..1.0, 4),
        bump in 0.01f64..0.5,
    ) {
        use deepseq_netlist::netlist::{GateKind, Netlist};
        let mut nl = Netlist::new("p");
        let a = nl.add_input("a");
        let g1 = nl.add_gate(GateKind::Not, vec![a]);
        let g2 = nl.add_gate(GateKind::And, vec![a, g1]);
        let g3 = nl.add_gate(GateKind::Xor, vec![g1, g2]);
        nl.set_output(g3, "y");
        let _ = (g1, g2, g3);
        let lib = CellLibrary::default();
        let base = lib.netlist_power(&nl, &rates);
        let bumped: Vec<f64> = rates.iter().map(|r| (r + bump).min(1.5)).collect();
        let higher = lib.netlist_power(&nl, &bumped);
        prop_assert!(higher > base);
    }

    #[test]
    fn workload_density_raises_pi_activity_estimate(
        p1 in 0.2f64..0.8,
        d_low in 0.0f64..0.1,
        extra in 0.1f64..0.3,
    ) {
        // The probabilistic method must pass PI toggle density through.
        let mut aig = SeqAig::new("d");
        let a = aig.add_pi("a");
        let n = aig.add_not(a);
        aig.set_output(n, "y");
        let low = Workload::new(vec![PiStimulus { p1, density: d_low }]);
        let high = Workload::new(vec![PiStimulus { p1, density: d_low + extra }]);
        let est_low = estimate(&aig, &low, &ProbabilisticOptions::default());
        let est_high = estimate(&aig, &high, &ProbabilisticOptions::default());
        prop_assert!(est_high.toggle_rate(a.index()) > est_low.toggle_rate(a.index()));
        prop_assert!(est_high.toggle_rate(n.index()) > est_low.toggle_rate(n.index()));
    }
}
