//! SAIF (Switching Activity Interchange Format) emission and parsing.
//!
//! The paper's pipeline (Fig. 3) translates the transition probabilities of
//! every method into SAIF files that a power-analysis tool consumes. This
//! module reproduces that interchange: [`write_saif`] emits a SAIF file from
//! per-net activity, [`parse_saif`] reads one back (used by
//! [`analyze`](crate::analyze) so the data really flows through the same
//! format).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Switching activity of one net over a observation window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetActivity {
    /// Time spent at logic 0 (in cycles).
    pub t0: u64,
    /// Time spent at logic 1 (in cycles).
    pub t1: u64,
    /// Number of toggles over the window.
    pub tc: u64,
}

impl NetActivity {
    /// Builds activity counts from probabilities over `duration` cycles.
    pub fn from_probabilities(p1: f64, toggle_rate: f64, duration: u64) -> Self {
        let t1 = (p1.clamp(0.0, 1.0) * duration as f64).round() as u64;
        NetActivity {
            t0: duration - t1.min(duration),
            t1: t1.min(duration),
            tc: (toggle_rate.max(0.0) * duration as f64).round() as u64,
        }
    }

    /// Toggle rate (transitions per cycle) over `duration`.
    pub fn toggle_rate(&self, duration: u64) -> f64 {
        if duration == 0 {
            return 0.0;
        }
        self.tc as f64 / duration as f64
    }
}

/// An in-memory SAIF document: a duration and named net activities.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SaifDocument {
    /// Observation window length in cycles.
    pub duration: u64,
    /// Activity per net name (sorted for stable output).
    pub nets: BTreeMap<String, NetActivity>,
}

impl SaifDocument {
    /// An empty document with a duration.
    pub fn new(duration: u64) -> Self {
        SaifDocument {
            duration,
            nets: BTreeMap::new(),
        }
    }

    /// Records one net's activity from probabilities.
    pub fn add_net(&mut self, name: impl Into<String>, p1: f64, toggle_rate: f64) {
        self.nets.insert(
            name.into(),
            NetActivity::from_probabilities(p1, toggle_rate, self.duration),
        );
    }
}

/// Serializes a document to SAIF text.
pub fn write_saif(doc: &SaifDocument, design: &str) -> String {
    let mut out = String::new();
    out.push_str("(SAIFILE\n");
    out.push_str("  (SAIFVERSION \"2.0\")\n");
    out.push_str("  (DIRECTION \"backward\")\n");
    out.push_str("  (DESIGN \"");
    out.push_str(design);
    out.push_str("\")\n");
    out.push_str(&format!("  (DURATION {})\n", doc.duration));
    out.push_str("  (INSTANCE top\n    (NET\n");
    for (name, activity) in &doc.nets {
        out.push_str(&format!(
            "      ({} (T0 {}) (T1 {}) (TC {}))\n",
            name, activity.t0, activity.t1, activity.tc
        ));
    }
    out.push_str("    )\n  )\n)\n");
    out
}

/// Errors from SAIF parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SaifError {
    /// Missing `(SAIFILE` header.
    NotSaif,
    /// Missing or malformed DURATION.
    BadDuration,
    /// A net entry could not be parsed.
    BadNet {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for SaifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaifError::NotSaif => write!(f, "missing (SAIFILE header"),
            SaifError::BadDuration => write!(f, "missing or malformed DURATION"),
            SaifError::BadNet { line } => write!(f, "malformed net entry at line {line}"),
        }
    }
}

impl Error for SaifError {}

/// Parses SAIF text back into a document. Only the subset produced by
/// [`write_saif`] is supported (one instance, flat nets).
///
/// # Errors
/// Returns [`SaifError`] on malformed input.
pub fn parse_saif(text: &str) -> Result<SaifDocument, SaifError> {
    if !text.trim_start().starts_with("(SAIFILE") {
        return Err(SaifError::NotSaif);
    }
    let mut duration = None;
    let mut nets = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("(DURATION ") {
            let value = rest.trim_end_matches(')').trim();
            duration = Some(value.parse().map_err(|_| SaifError::BadDuration)?);
        } else if line.starts_with('(') && line.contains("(T0 ") {
            let parsed = parse_net_line(line).ok_or(SaifError::BadNet { line: lineno + 1 })?;
            nets.insert(parsed.0, parsed.1);
        }
    }
    Ok(SaifDocument {
        duration: duration.ok_or(SaifError::BadDuration)?,
        nets,
    })
}

fn parse_net_line(line: &str) -> Option<(String, NetActivity)> {
    // `(name (T0 x) (T1 y) (TC z))` — strip exactly the outer parentheses.
    let inner = line.strip_prefix('(')?.strip_suffix(')')?;
    let name_end = inner.find(" (")?;
    let name = inner[..name_end].trim().to_string();
    let field = |key: &str| -> Option<u64> {
        let pos = inner.find(key)?;
        let rest = &inner[pos + key.len()..];
        let end = rest.find(')')?;
        rest[..end].trim().parse().ok()
    };
    Some((
        name,
        NetActivity {
            t0: field("(T0 ")?,
            t1: field("(T1 ")?,
            tc: field("(TC ")?,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SaifDocument {
        let mut doc = SaifDocument::new(10_000);
        doc.add_net("clk_buf", 0.5, 2.0);
        doc.add_net("q0", 0.25, 0.125);
        doc.add_net("n42", 0.9, 0.02);
        doc
    }

    #[test]
    fn activity_from_probabilities() {
        let a = NetActivity::from_probabilities(0.25, 0.1, 1000);
        assert_eq!(a.t1, 250);
        assert_eq!(a.t0, 750);
        assert_eq!(a.tc, 100);
        assert!((a.toggle_rate(1000) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn roundtrip() {
        let doc = sample();
        let text = write_saif(&doc, "testdesign");
        let parsed = parse_saif(&text).unwrap();
        assert_eq!(doc, parsed);
    }

    #[test]
    fn syntax_contains_required_constructs() {
        let text = write_saif(&sample(), "d");
        for token in [
            "(SAIFILE",
            "SAIFVERSION",
            "DURATION 10000",
            "(T0 ",
            "(T1 ",
            "(TC ",
        ] {
            assert!(text.contains(token), "missing {token}");
        }
        // Balanced parentheses.
        let open = text.matches('(').count();
        let close = text.matches(')').count();
        assert_eq!(open, close);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse_saif("hello"), Err(SaifError::NotSaif));
        assert_eq!(parse_saif("(SAIFILE\n)"), Err(SaifError::BadDuration));
    }

    #[test]
    fn t0_t1_partition_duration() {
        let doc = sample();
        for activity in doc.nets.values() {
            assert_eq!(activity.t0 + activity.t1, doc.duration);
        }
    }

    #[test]
    fn probability_clamping() {
        let a = NetActivity::from_probabilities(1.5, -0.1, 100);
        assert_eq!(a.t1, 100);
        assert_eq!(a.tc, 0);
    }
}
