//! Standard-cell energy model — the stand-in for the paper's "commercial
//! power analysis tool ... with a TSMC 90nm standard cell library".
//!
//! Dynamic power of a gate is `P = ½ · C · V²dd · f · TC` where `TC` is the
//! toggle rate (transitions per cycle). The capacitance `C` of a driven net
//! is the cell output capacitance plus a per-fanout input load. The absolute
//! numbers below are representative 90 nm-class values (femtofarads); only
//! relative comparisons between estimation methods matter for Table V/VI.

use deepseq_netlist::netlist::{GateKind, Netlist};

/// Electrical parameters of the power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellLibrary {
    /// Supply voltage in volts (90 nm: 1.0 V nominal).
    pub vdd: f64,
    /// Clock frequency in hertz.
    pub frequency: f64,
    /// Input load per fanout in farads.
    pub input_load: f64,
}

impl Default for CellLibrary {
    /// 1.0 V, 100 MHz, 1.5 fF per fanout input.
    fn default() -> Self {
        CellLibrary {
            vdd: 1.0,
            frequency: 100.0e6,
            input_load: 1.5e-15,
        }
    }
}

impl CellLibrary {
    /// Output (self + drain) capacitance of a gate kind, in farads.
    pub fn output_capacitance(&self, kind: GateKind) -> f64 {
        // Larger cells drive more internal capacitance.
        let femto = match kind {
            GateKind::Input => 0.5,
            GateKind::Buf => 1.2,
            GateKind::Not => 1.0,
            GateKind::And | GateKind::Nand => 2.0,
            GateKind::Or | GateKind::Nor => 2.2,
            GateKind::Xor | GateKind::Xnor => 3.5,
            GateKind::Mux => 3.0,
            GateKind::Dff => 6.0,
        };
        femto * 1e-15
    }

    /// Effective switched capacitance of a gate driving `fanout` inputs.
    pub fn switched_capacitance(&self, kind: GateKind, fanout: usize) -> f64 {
        self.output_capacitance(kind) + self.input_load * fanout as f64
    }

    /// Dynamic power (watts) of one gate given its toggle rate
    /// (transitions per clock cycle).
    pub fn gate_power(&self, kind: GateKind, fanout: usize, toggle_rate: f64) -> f64 {
        0.5 * self.switched_capacitance(kind, fanout)
            * self.vdd
            * self.vdd
            * self.frequency
            * toggle_rate
    }

    /// Total dynamic power (watts) of a netlist given per-gate toggle rates
    /// (indexed by gate id).
    ///
    /// # Panics
    /// Panics if `toggle_rates.len() != netlist.len()`.
    pub fn netlist_power(&self, netlist: &Netlist, toggle_rates: &[f64]) -> f64 {
        assert_eq!(
            toggle_rates.len(),
            netlist.len(),
            "toggle rate per gate required"
        );
        let mut fanout = vec![0usize; netlist.len()];
        for (_, gate) in netlist.iter() {
            for f in &gate.fanins {
                fanout[f.index()] += 1;
            }
        }
        netlist
            .iter()
            .map(|(id, gate)| {
                self.gate_power(gate.kind, fanout[id.index()], toggle_rates[id.index()])
            })
            .sum()
    }
}

/// Converts watts to the milliwatt figures reported in Tables V/VI.
pub fn watts_to_mw(w: f64) -> f64 {
    w * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacitance_ordering_is_sane() {
        let lib = CellLibrary::default();
        // Flip-flops are the biggest cells; inverters among the smallest.
        assert!(lib.output_capacitance(GateKind::Dff) > lib.output_capacitance(GateKind::Xor));
        assert!(lib.output_capacitance(GateKind::Xor) > lib.output_capacitance(GateKind::Not));
    }

    #[test]
    fn power_is_linear_in_toggle_rate() {
        let lib = CellLibrary::default();
        let p1 = lib.gate_power(GateKind::And, 2, 0.1);
        let p2 = lib.gate_power(GateKind::And, 2, 0.2);
        assert!((p2 / p1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fanout_increases_power() {
        let lib = CellLibrary::default();
        assert!(lib.gate_power(GateKind::And, 5, 0.1) > lib.gate_power(GateKind::And, 1, 0.1));
    }

    #[test]
    fn zero_toggle_zero_power() {
        let lib = CellLibrary::default();
        assert_eq!(lib.gate_power(GateKind::Xor, 3, 0.0), 0.0);
    }

    #[test]
    fn netlist_power_sums_gates() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let g = nl.add_gate(GateKind::Not, vec![a]);
        nl.set_output(g, "y");
        let lib = CellLibrary::default();
        let total = lib.netlist_power(&nl, &[0.5, 0.5]);
        let by_hand =
            lib.gate_power(GateKind::Input, 1, 0.5) + lib.gate_power(GateKind::Not, 0, 0.5);
        assert!((total - by_hand).abs() < 1e-18);
    }

    #[test]
    fn magnitudes_are_milliwatt_scale() {
        // ~10k gates at 0.1 toggle rate should land in the paper's 0.2–7 mW
        // range.
        let lib = CellLibrary::default();
        let per_gate = lib.gate_power(GateKind::And, 2, 0.1);
        let total_mw = watts_to_mw(per_gate * 10_000.0);
        assert!(
            (0.1..20.0).contains(&total_mw),
            "unrealistic scale: {total_mw} mW"
        );
    }
}
