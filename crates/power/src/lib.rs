//! Dynamic power estimation — downstream task 1 of the DeepSeq paper
//! (Section V-A, Tables V and VI).
//!
//! The paper's pipeline (Fig. 3) compares four sources of switching
//! activity, each translated into a SAIF file and evaluated by a power
//! analysis tool:
//!
//! 1. **GT** — logic simulation of the testbench workload ([`deepseq_sim`]);
//! 2. **Probabilistic** — the non-simulative baseline of Ghosh et al. \[27\]
//!    ([`probabilistic`]);
//! 3. **Grannite** — the GNN baseline of Zhang et al. \[18\], re-implemented
//!    per the paper's description ([`grannite`]);
//! 4. **DeepSeq** — the fine-tuned model of [`deepseq_core`].
//!
//! The commercial tool + TSMC 90 nm library are replaced by [`cells`] +
//! [`analyze`] (a ½·C·V²·f·TC power model over a 90 nm-class capacitance
//! table); [`saif`] reproduces the interchange format so activity really
//! flows through SAIF files as in Fig. 3.
//!
//! # Example
//!
//! ```
//! use deepseq_netlist::netlist::{GateKind, Netlist};
//! use deepseq_power::{run_pipeline, PipelineConfig};
//! use deepseq_sim::Workload;
//!
//! let mut nl = Netlist::new("demo");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let g = nl.add_named_gate(GateKind::Xor, vec![a, b], "g");
//! nl.set_output(g, "y");
//!
//! let result = run_pipeline(&nl, &Workload::uniform(2, 0.5), None, None,
//!                           &PipelineConfig::default());
//! assert!(result.gt_mw > 0.0);
//! // The probabilistic method is close on this trivial circuit.
//! assert!(result.probabilistic.error_pct < 50.0);
//! ```

#![warn(missing_docs)]

pub mod analyze;
pub mod cells;
pub mod grannite;
pub mod pipeline;
pub mod probabilistic;
pub mod saif;

pub use analyze::{analyze_power, percent_error, PowerReport};
pub use cells::{watts_to_mw, CellLibrary};
pub use grannite::{
    evaluate_grannite, train_grannite, Grannite, GranniteConfig, GranniteSample,
    GranniteTrainOptions,
};
pub use pipeline::{
    deepseq_probs, finetune_samples, run_pipeline, saif_for_netlist, DesignPowerResult,
    MethodPower, PipelineConfig,
};
pub use probabilistic::{estimate, ProbabilisticOptions};
pub use saif::{parse_saif, write_saif, NetActivity, SaifDocument, SaifError};
