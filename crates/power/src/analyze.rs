//! The "power analysis tool" of Fig. 3: consumes a SAIF file plus the
//! netlist and reports average dynamic power.

use deepseq_netlist::netlist::Netlist;

use crate::cells::{watts_to_mw, CellLibrary};
use crate::saif::SaifDocument;

/// A power report for one design under one activity file.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    /// Design name.
    pub design: String,
    /// Total average dynamic power in milliwatts.
    pub total_mw: f64,
    /// Number of nets that carried activity data.
    pub matched_nets: usize,
    /// Number of netlist gates without activity data (treated as idle).
    pub missing_nets: usize,
}

/// Computes average power of `netlist` from a SAIF document. Nets are
/// matched by gate name (anonymous gates use the `n<id>` convention of the
/// SAIF emitters in this crate); unmatched gates contribute no power, which
/// mirrors how a real tool treats nets absent from the SAIF file.
pub fn analyze_power(netlist: &Netlist, saif: &SaifDocument, library: &CellLibrary) -> PowerReport {
    let mut toggle_rates = vec![0.0f64; netlist.len()];
    let mut matched = 0usize;
    for (id, gate) in netlist.iter() {
        let name = gate.name.clone().unwrap_or_else(|| format!("n{}", id.0));
        if let Some(activity) = saif.nets.get(&name) {
            toggle_rates[id.index()] = activity.toggle_rate(saif.duration);
            matched += 1;
        }
    }
    let watts = library.netlist_power(netlist, &toggle_rates);
    PowerReport {
        design: netlist.name().to_string(),
        total_mw: watts_to_mw(watts),
        matched_nets: matched,
        missing_nets: netlist.len() - matched,
    }
}

/// Percentage error between an estimate and the ground truth, as reported in
/// Tables V–VII.
pub fn percent_error(estimate: f64, ground_truth: f64) -> f64 {
    if ground_truth == 0.0 {
        return if estimate == 0.0 { 0.0 } else { f64::INFINITY };
    }
    ((estimate - ground_truth) / ground_truth).abs() * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepseq_netlist::netlist::GateKind;

    fn toy() -> Netlist {
        let mut nl = Netlist::new("toy");
        let a = nl.add_input("a");
        let g = nl.add_named_gate(GateKind::And, vec![a, a], "g1");
        nl.set_output(g, "y");
        nl
    }

    #[test]
    fn matched_nets_counted() {
        let nl = toy();
        let mut saif = SaifDocument::new(1000);
        saif.add_net("a", 0.5, 0.5);
        saif.add_net("g1", 0.25, 0.2);
        let report = analyze_power(&nl, &saif, &CellLibrary::default());
        assert_eq!(report.matched_nets, 2);
        assert_eq!(report.missing_nets, 0);
        assert!(report.total_mw > 0.0);
    }

    #[test]
    fn missing_nets_are_idle() {
        let nl = toy();
        let saif = SaifDocument::new(1000);
        let report = analyze_power(&nl, &saif, &CellLibrary::default());
        assert_eq!(report.matched_nets, 0);
        assert_eq!(report.total_mw, 0.0);
    }

    #[test]
    fn power_scales_with_activity() {
        let nl = toy();
        let mut low = SaifDocument::new(1000);
        low.add_net("g1", 0.5, 0.1);
        let mut high = SaifDocument::new(1000);
        high.add_net("g1", 0.5, 0.4);
        let lib = CellLibrary::default();
        let p_low = analyze_power(&nl, &low, &lib).total_mw;
        let p_high = analyze_power(&nl, &high, &lib).total_mw;
        assert!((p_high / p_low - 4.0).abs() < 0.01);
    }

    #[test]
    fn percent_error_basics() {
        assert!((percent_error(1.1, 1.0) - 10.0).abs() < 1e-9);
        assert!((percent_error(0.9, 1.0) - 10.0).abs() < 1e-9);
        assert_eq!(percent_error(0.0, 0.0), 0.0);
        assert!(percent_error(1.0, 0.0).is_infinite());
    }
}
