//! The end-to-end power-estimation pipeline of paper Fig. 3.
//!
//! For a test design (a multi-gate-type [`Netlist`]):
//!
//! 1. decompose into an AIG without optimization, remembering each original
//!    gate's fanout node ([`lower_to_aig`]);
//! 2. obtain per-method transition probabilities — logic simulation (GT),
//!    the probabilistic method, fine-tuned Grannite, fine-tuned DeepSeq;
//! 3. translate each into a SAIF file over the *original* gates;
//! 4. feed each SAIF file to the power-analysis tool and compare.

use deepseq_core::encoding::initial_states;
use deepseq_core::{DeepSeq, TrainSample};
use deepseq_netlist::lower_to_aig;
use deepseq_netlist::netlist::Netlist;
use deepseq_netlist::LoweredNetlist;
use deepseq_sim::{simulate, NodeProbabilities, SimOptions, Workload};

use crate::analyze::{analyze_power, percent_error};
use crate::cells::CellLibrary;
use crate::grannite::Grannite;
use crate::probabilistic::{estimate, ProbabilisticOptions};
use crate::saif::SaifDocument;

/// Configuration of a pipeline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Simulation options for ground truth.
    pub sim: SimOptions,
    /// SAIF observation window (cycles).
    pub duration: u64,
    /// Cell library of the power model.
    pub library: CellLibrary,
    /// Seed for DeepSeq initial hidden states.
    pub init_seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            sim: SimOptions::default(),
            duration: 10_000,
            library: CellLibrary::default(),
            init_seed: 0,
        }
    }
}

/// Power numbers of one estimation method against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MethodPower {
    /// Estimated power in milliwatts.
    pub mw: f64,
    /// `|estimate − GT| / GT` in percent (the `Error.` columns of Table V).
    pub error_pct: f64,
}

/// One row of Table V / Table VI.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPowerResult {
    /// Design name.
    pub design: String,
    /// Ground-truth power (mW) from logic simulation.
    pub gt_mw: f64,
    /// The non-simulative baseline \[27\].
    pub probabilistic: MethodPower,
    /// Fine-tuned Grannite \[18\] (if a model was supplied).
    pub grannite: Option<MethodPower>,
    /// Fine-tuned DeepSeq (if a model was supplied).
    pub deepseq: Option<MethodPower>,
}

/// Builds the SAIF document for the original netlist gates from AIG-level
/// probabilities via the fanout-node map (paper: "we only record
/// probabilities of the fanout gates in all converted combinations").
pub fn saif_for_netlist(
    netlist: &Netlist,
    lowered: &LoweredNetlist,
    probs: &NodeProbabilities,
    duration: u64,
) -> SaifDocument {
    let mut doc = SaifDocument::new(duration);
    for (id, gate) in netlist.iter() {
        let node = lowered.node_for(id);
        let name = gate.name.clone().unwrap_or_else(|| format!("n{}", id.0));
        doc.add_net(
            name,
            probs.p1[node.index()],
            probs.toggle_rate(node.index()),
        );
    }
    doc
}

/// Predicted probabilities of a (fine-tuned) DeepSeq model on an AIG.
pub fn deepseq_probs(
    model: &DeepSeq,
    aig: &deepseq_netlist::SeqAig,
    workload: &Workload,
    init_seed: u64,
) -> NodeProbabilities {
    let graph = deepseq_core::CircuitGraph::build(aig);
    let h0 = initial_states(aig, workload, model.config().hidden_dim, init_seed);
    let preds = model.predict(&graph, &h0);
    NodeProbabilities {
        p1: preds.lg.data().iter().map(|&v| v as f64).collect(),
        p01: (0..preds.tr.rows())
            .map(|r| preds.tr.get(r, 0) as f64)
            .collect(),
        p10: (0..preds.tr.rows())
            .map(|r| preds.tr.get(r, 1) as f64)
            .collect(),
    }
}

/// Runs the Fig. 3 pipeline on one design under one workload.
///
/// `grannite` and `deepseq` are optional pre-/fine-tuned models; when absent
/// the corresponding column is skipped.
pub fn run_pipeline(
    netlist: &Netlist,
    workload: &Workload,
    grannite: Option<&Grannite>,
    deepseq: Option<&DeepSeq>,
    config: &PipelineConfig,
) -> DesignPowerResult {
    let lowered = lower_to_aig(netlist).expect("test designs are valid");
    let aig = &lowered.aig;

    // Ground truth: logic simulation of the testbench workload.
    let gt = simulate(aig, workload, &config.sim);
    let gt_saif = saif_for_netlist(netlist, &lowered, &gt.probs, config.duration);
    let gt_power = analyze_power(netlist, &gt_saif, &config.library).total_mw;

    // Probabilistic baseline.
    let prob = estimate(aig, workload, &ProbabilisticOptions::default());
    let prob_saif = saif_for_netlist(netlist, &lowered, &prob, config.duration);
    let prob_power = analyze_power(netlist, &prob_saif, &config.library).total_mw;

    // Grannite: PI/FF activity from simulation, comb gates predicted.
    let grannite_power = grannite.map(|model| {
        let probs = model.predict_probs(aig, &gt.probs);
        let saif = saif_for_netlist(netlist, &lowered, &probs, config.duration);
        analyze_power(netlist, &saif, &config.library).total_mw
    });

    // DeepSeq: all nodes predicted from the workload alone.
    let deepseq_power = deepseq.map(|model| {
        let probs = deepseq_probs(model, aig, workload, config.init_seed);
        let saif = saif_for_netlist(netlist, &lowered, &probs, config.duration);
        analyze_power(netlist, &saif, &config.library).total_mw
    });

    DesignPowerResult {
        design: netlist.name().to_string(),
        gt_mw: gt_power,
        probabilistic: MethodPower {
            mw: prob_power,
            error_pct: percent_error(prob_power, gt_power),
        },
        grannite: grannite_power.map(|mw| MethodPower {
            mw,
            error_pct: percent_error(mw, gt_power),
        }),
        deepseq: deepseq_power.map(|mw| MethodPower {
            mw,
            error_pct: percent_error(mw, gt_power),
        }),
    }
}

/// Builds DeepSeq fine-tuning samples for a circuit under many workloads
/// (Section V-A1: "after fine-tuning with 1,000 different workloads on a
/// circuit, DeepSeq can generalize to arbitrary workloads for that
/// circuit").
pub fn finetune_samples(
    aig: &deepseq_netlist::SeqAig,
    workloads: &[Workload],
    hidden_dim: usize,
    sim: &SimOptions,
    seed: u64,
) -> Vec<TrainSample> {
    workloads
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let mut opts = *sim;
            opts.seed = sim.seed.wrapping_add(i as u64);
            TrainSample::generate(aig, w, hidden_dim, &opts, seed.wrapping_add(i as u64))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepseq_netlist::netlist::GateKind;

    fn small_design() -> Netlist {
        let mut nl = Netlist::new("small");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_named_gate(GateKind::Xor, vec![a, b], "x");
        let q = nl.add_dff("q", false);
        let o = nl.add_named_gate(GateKind::Nor, vec![x, q], "o");
        nl.connect_dff(q, o).unwrap();
        nl.set_output(o, "y");
        nl
    }

    #[test]
    fn pipeline_without_models_runs() {
        let nl = small_design();
        let w = Workload::uniform(2, 0.5);
        let result = run_pipeline(&nl, &w, None, None, &PipelineConfig::default());
        assert!(result.gt_mw > 0.0);
        assert!(result.probabilistic.mw > 0.0);
        assert!(result.grannite.is_none());
        assert!(result.deepseq.is_none());
    }

    #[test]
    fn gt_power_scales_with_workload_activity() {
        let nl = small_design();
        let quiet = run_pipeline(
            &nl,
            &Workload::uniform(2, 0.02),
            None,
            None,
            &PipelineConfig::default(),
        );
        let busy = run_pipeline(
            &nl,
            &Workload::uniform(2, 0.5),
            None,
            None,
            &PipelineConfig::default(),
        );
        assert!(busy.gt_mw > quiet.gt_mw);
    }

    #[test]
    fn saif_covers_every_gate() {
        let nl = small_design();
        let lowered = lower_to_aig(&nl).unwrap();
        let gt = simulate(
            &lowered.aig,
            &Workload::uniform(2, 0.5),
            &SimOptions::default(),
        );
        let doc = saif_for_netlist(&nl, &lowered, &gt.probs, 1000);
        assert_eq!(doc.nets.len(), nl.len());
    }

    #[test]
    fn deepseq_probs_shapes() {
        use deepseq_core::{DeepSeq, DeepSeqConfig};
        let nl = small_design();
        let lowered = lower_to_aig(&nl).unwrap();
        let model = DeepSeq::new(DeepSeqConfig {
            hidden_dim: 8,
            iterations: 2,
            ..DeepSeqConfig::default()
        });
        let w = Workload::uniform(2, 0.5);
        let probs = deepseq_probs(&model, &lowered.aig, &w, 0);
        assert_eq!(probs.len(), lowered.aig.len());
        assert!(probs.p1.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn full_pipeline_with_models() {
        use crate::grannite::{Grannite, GranniteConfig};
        use deepseq_core::{DeepSeq, DeepSeqConfig};
        let nl = small_design();
        let w = Workload::uniform(2, 0.5);
        let grannite = Grannite::new(GranniteConfig {
            hidden_dim: 8,
            seed: 1,
        });
        let deepseq = DeepSeq::new(DeepSeqConfig {
            hidden_dim: 8,
            iterations: 2,
            ..DeepSeqConfig::default()
        });
        let result = run_pipeline(
            &nl,
            &w,
            Some(&grannite),
            Some(&deepseq),
            &PipelineConfig::default(),
        );
        let g = result.grannite.unwrap();
        let d = result.deepseq.unwrap();
        assert!(g.mw >= 0.0 && d.mw >= 0.0);
        assert!(g.error_pct >= 0.0 && d.error_pct >= 0.0);
    }

    #[test]
    fn finetune_samples_one_per_workload() {
        let nl = small_design();
        let lowered = lower_to_aig(&nl).unwrap();
        let workloads = vec![Workload::uniform(2, 0.3), Workload::uniform(2, 0.7)];
        let samples = finetune_samples(&lowered.aig, &workloads, 8, &SimOptions::default(), 0);
        assert_eq!(samples.len(), 2);
        assert_ne!(samples[0].init_h, samples[1].init_h);
    }
}
