//! Non-simulative probabilistic switching estimation — the baseline method
//! of Ghosh et al. \[27\] used in Tables V/VI.
//!
//! Signal probabilities and transition densities are propagated through the
//! combinational logic under a *spatial independence* assumption (every gate
//! input treated as independent), with flip-flop outputs iterated to a fixed
//! point. Exactly as the paper notes, this class of methods "produce\[s\]
//! inaccurate results on structures such as reconvergence fanouts and cyclic
//! FFs" — the inaccuracy is inherited faithfully, not patched.

use deepseq_netlist::aig::{AigNode, SeqAig};
use deepseq_sim::{NodeProbabilities, Workload};

/// Options for the fixed-point iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbabilisticOptions {
    /// Maximum flip-flop fixed-point iterations.
    pub max_iterations: usize,
    /// Convergence threshold on FF probabilities.
    pub tolerance: f64,
}

impl Default for ProbabilisticOptions {
    fn default() -> Self {
        ProbabilisticOptions {
            max_iterations: 50,
            tolerance: 1e-6,
        }
    }
}

/// Estimates per-node probabilities without simulation.
///
/// Propagation rules (independence assumed):
/// * `AND`: `p = pa·pb`, density `D = pb·Da + pa·Db` (boolean-difference
///   rule, simultaneous switching ignored);
/// * `NOT`: `p = 1 − pa`, `D = Da`;
/// * `FF`: output statistics copy the D input's from the previous iteration.
///
/// Densities are clamped to the feasible `2·min(p, 1−p)` and reported as
/// `p01 = p10 = D/2` (stationarity).
pub fn estimate(
    aig: &SeqAig,
    workload: &Workload,
    opts: &ProbabilisticOptions,
) -> NodeProbabilities {
    let n = aig.len();
    let mut p1 = vec![0.0f64; n];
    let mut density = vec![0.0f64; n];

    // PI statistics straight from the workload model.
    let pis = aig.pis();
    for (i, &pi) in pis.iter().enumerate() {
        let stim = workload.stimuli()[i];
        p1[pi.index()] = stim.p1.clamp(0.0, 1.0);
        let feasible = 2.0 * stim.p1.min(1.0 - stim.p1).max(0.0);
        density[pi.index()] = stim.density.clamp(0.0, feasible);
    }

    // FF initial guess: the power-on value, no activity.
    let ffs = aig.ffs();
    for &ff in &ffs {
        if let AigNode::Ff { init, .. } = aig.node(ff) {
            p1[ff.index()] = if *init { 1.0 } else { 0.0 };
        }
    }

    for _ in 0..opts.max_iterations {
        // One combinational sweep (ordered ids ⇒ single pass).
        for (id, node) in aig.iter() {
            match *node {
                AigNode::And(a, b) => {
                    let (pa, pb) = (p1[a.index()], p1[b.index()]);
                    let (da, db) = (density[a.index()], density[b.index()]);
                    let p = pa * pb;
                    let d = pb * da + pa * db;
                    p1[id.index()] = p;
                    density[id.index()] = d.min(2.0 * p.min(1.0 - p)).max(0.0);
                }
                AigNode::Not(a) => {
                    p1[id.index()] = 1.0 - p1[a.index()];
                    density[id.index()] = density[a.index()];
                }
                AigNode::Pi | AigNode::Ff { .. } => {}
            }
        }
        // FF update; track the largest move for convergence.
        let mut delta: f64 = 0.0;
        for &ff in &ffs {
            let d_in = aig.ff_fanin(ff).expect("validated AIG");
            let new_p = p1[d_in.index()];
            let new_d = density[d_in.index()];
            delta = delta
                .max((p1[ff.index()] - new_p).abs())
                .max((density[ff.index()] - new_d).abs());
            p1[ff.index()] = new_p;
            density[ff.index()] = new_d;
        }
        if delta < opts.tolerance {
            break;
        }
    }

    let p01: Vec<f64> = density.iter().map(|d| d / 2.0).collect();
    NodeProbabilities {
        p1,
        p10: p01.clone(),
        p01,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepseq_sim::{simulate, PiStimulus, SimOptions};

    fn opts() -> ProbabilisticOptions {
        ProbabilisticOptions::default()
    }

    #[test]
    fn independent_and_gate_is_exact() {
        let mut aig = SeqAig::new("and");
        let a = aig.add_pi("a");
        let b = aig.add_pi("b");
        let g = aig.add_and(a, b);
        let w = Workload::new(vec![
            PiStimulus::independent(0.5),
            PiStimulus::independent(0.4),
        ]);
        let est = estimate(&aig, &w, &opts());
        assert!((est.p1[g.index()] - 0.2).abs() < 1e-9);
        // Exact per-cycle-independent result: p01(AND) = p0·p1 = 0.8·0.2 =
        // 0.16. The density rule gives D = pb·Da + pa·Db = .4·.5 + .5·.48 =
        // 0.44, clamped to the feasible 2·min(p,1−p) = 0.4 ⇒ p01 = 0.2 —
        // close to exact but biased high (the method's known approximation).
        assert!((est.p01[g.index()] - 0.2).abs() < 1e-9);
    }

    #[test]
    fn not_preserves_density() {
        let mut aig = SeqAig::new("not");
        let a = aig.add_pi("a");
        let n = aig.add_not(a);
        let w = Workload::new(vec![PiStimulus {
            p1: 0.3,
            density: 0.2,
        }]);
        let est = estimate(&aig, &w, &opts());
        assert!((est.p1[n.index()] - 0.7).abs() < 1e-9);
        assert!((est.p01[n.index()] - 0.1).abs() < 1e-9);
    }

    #[test]
    fn ff_fixed_point_converges() {
        // q' = q AND pi: the fixed point of p(q) = p(q)·p(pi) is 0.
        let mut aig = SeqAig::new("decay");
        let a = aig.add_pi("a");
        let q = aig.add_ff("q", true);
        let g = aig.add_and(q, a);
        aig.connect_ff(q, g).unwrap();
        let w = Workload::uniform(1, 0.5);
        let est = estimate(&aig, &w, &opts());
        assert!(est.p1[q.index()] < 1e-6);
    }

    #[test]
    fn reconvergent_fanout_error_exists() {
        // y = a AND (NOT a) is constant 0, but the independence assumption
        // reports p = p·(1−p) = 0.25 — the classic failure the paper
        // exploits. Verify the baseline really errs and simulation doesn't.
        let mut aig = SeqAig::new("reconv");
        let a = aig.add_pi("a");
        let n = aig.add_not(a);
        let g = aig.add_and(a, n);
        let w = Workload::uniform(1, 0.5);
        let est = estimate(&aig, &w, &opts());
        assert!(
            (est.p1[g.index()] - 0.25).abs() < 1e-9,
            "baseline should err"
        );
        let sim = simulate(&aig, &w, &SimOptions::default());
        assert_eq!(sim.probs.p1[g.index()], 0.0, "simulation is exact");
    }

    #[test]
    fn estimates_stay_in_bounds() {
        use deepseq_data::random::{random_circuit, CircuitSpec};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        let aig = random_circuit("r", &CircuitSpec::default(), &mut rng);
        let w = Workload::random(aig.num_pis(), &mut rng);
        let est = estimate(&aig, &w, &opts());
        for v in 0..aig.len() {
            assert!((0.0..=1.0).contains(&est.p1[v]));
            assert!((0.0..=0.5 + 1e-9).contains(&est.p01[v]));
            assert!(est.p01[v] <= est.p1[v].min(1.0 - est.p1[v]) + 1e-9);
        }
    }

    #[test]
    fn deterministic() {
        let mut aig = SeqAig::new("d");
        let a = aig.add_pi("a");
        let q = aig.add_ff("q", false);
        let g = aig.add_and(a, q);
        let n = aig.add_not(g);
        aig.connect_ff(q, n).unwrap();
        let w = Workload::uniform(1, 0.6);
        assert_eq!(estimate(&aig, &w, &opts()), estimate(&aig, &w, &opts()));
    }
}
