//! Grannite-style learning baseline (Zhang, Ren & Khailany \[18\]).
//!
//! Per the paper's re-implementation (Section V-A2): Grannite receives the
//! toggle rates of registers and primary inputs *from RTL simulation* as
//! input features, processes only the combinational logic in a **single
//! forward pass** of a DAG-GNN, and predicts toggle rates for combinational
//! gates. PI and FF activities are taken from simulation at inference time
//! too — the advantage the paper grants it — while the missing periodic
//! information exchange (no recurrence, no FF update) is its weakness.

use deepseq_core::aggregate::AggregatorLayer;
use deepseq_core::config::Aggregator;
use deepseq_core::graph::CircuitGraph;
use deepseq_netlist::aig::{SeqAig, NUM_NODE_TYPES};
use deepseq_nn::{Adam, GruCell, Linear, Matrix, Mlp, Params, Tape, VarId};
use deepseq_sim::NodeProbabilities;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Feature width: one-hot gate type + `p01`, `p10`, `p1` (populated only on
/// PI and FF rows, zero elsewhere).
pub const GRANNITE_FEATURES: usize = NUM_NODE_TYPES + 3;

/// Hyper-parameters of the Grannite baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GranniteConfig {
    /// Hidden dimension.
    pub hidden_dim: usize,
    /// Weight init seed.
    pub seed: u64,
}

impl Default for GranniteConfig {
    fn default() -> Self {
        GranniteConfig {
            hidden_dim: 32,
            seed: 0,
        }
    }
}

/// Builds the `n×7` Grannite feature matrix: gate-type one-hot for all
/// nodes; simulated `p01/p10/p1` on PI and FF rows only.
pub fn grannite_features(aig: &SeqAig, source_probs: &NodeProbabilities) -> Matrix {
    let n = aig.len();
    let mut feats = Matrix::zeros(n, GRANNITE_FEATURES);
    for (id, node) in aig.iter() {
        feats.set(id.index(), node.type_index(), 1.0);
        if node.is_pi() || node.is_ff() {
            feats.set(
                id.index(),
                NUM_NODE_TYPES,
                source_probs.p01[id.index()] as f32,
            );
            feats.set(
                id.index(),
                NUM_NODE_TYPES + 1,
                source_probs.p10[id.index()] as f32,
            );
            feats.set(
                id.index(),
                NUM_NODE_TYPES + 2,
                source_probs.p1[id.index()] as f32,
            );
        }
    }
    feats
}

/// Per-row supervision weights: combinational gates only (Grannite does not
/// predict PI/FF activity).
pub fn comb_mask(aig: &SeqAig) -> Vec<f32> {
    aig.iter()
        .map(|(_, node)| {
            if node.is_and() || node.is_not() {
                1.0
            } else {
                0.0
            }
        })
        .collect()
}

/// One Grannite training sample.
#[derive(Debug, Clone)]
pub struct GranniteSample {
    /// Preprocessed circuit.
    pub graph: CircuitGraph,
    /// `n×7` input features.
    pub features: Matrix,
    /// `n×2` toggle targets (`p01`, `p10`).
    pub target: Matrix,
    /// Supervision weights (1 on combinational gates).
    pub mask: Vec<f32>,
}

impl GranniteSample {
    /// Builds a sample from a circuit and its simulated probabilities.
    pub fn new(aig: &SeqAig, probs: &NodeProbabilities) -> Self {
        let target = Matrix::from_fn(aig.len(), 2, |r, c| {
            if c == 0 {
                probs.p01[r] as f32
            } else {
                probs.p10[r] as f32
            }
        });
        GranniteSample {
            graph: CircuitGraph::build(aig),
            features: grannite_features(aig, probs),
            target,
            mask: comb_mask(aig),
        }
    }
}

/// The Grannite baseline model.
#[derive(Debug, Clone)]
pub struct Grannite {
    config: GranniteConfig,
    params: Params,
    embed: Linear,
    agg: AggregatorLayer,
    gru: GruCell,
    head: Mlp,
}

impl Grannite {
    /// Builds a model with fresh weights.
    pub fn new(config: GranniteConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut params = Params::new();
        let d = config.hidden_dim;
        let embed = Linear::new(&mut params, "embed", GRANNITE_FEATURES, d, &mut rng);
        let agg = AggregatorLayer::new(&mut params, "agg", Aggregator::Attention, d, &mut rng);
        let gru = GruCell::new(&mut params, "gru", d + GRANNITE_FEATURES, d, &mut rng);
        let head = Mlp::new(&mut params, "head", &[d, d, 2], &mut rng);
        Grannite {
            config,
            params,
            embed,
            agg,
            gru,
            head,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GranniteConfig {
        &self.config
    }

    /// Records the single forward pass; returns the `n×2` toggle prediction.
    pub fn forward(&self, tape: &mut Tape, graph: &CircuitGraph, features: &Matrix) -> VarId {
        let feats = tape.input(features.clone());
        let h0_raw = self.embed.forward(tape, &self.params, feats);
        let h0 = tape.tanh(h0_raw);
        let mut cur: Vec<(VarId, usize)> = (0..graph.num_nodes).map(|i| (h0, i)).collect();
        for batch in &graph.forward {
            if batch.nodes.is_empty() {
                continue;
            }
            let node_prev =
                tape.gather_rows(batch.nodes.iter().map(|&v| cur[v as usize]).collect());
            let edge_prev = tape.gather_rows(
                batch
                    .edges
                    .iter()
                    .map(|&(_, seg)| cur[batch.nodes[seg as usize] as usize])
                    .collect(),
            );
            let edge_msgs =
                tape.gather_rows(batch.edges.iter().map(|&(u, _)| cur[u as usize]).collect());
            let segments: Vec<usize> = batch.edges.iter().map(|&(_, s)| s as usize).collect();
            let m = self.agg.aggregate(
                tape,
                &self.params,
                node_prev,
                edge_prev,
                edge_msgs,
                &segments,
                batch.nodes.len(),
            );
            let x = tape.gather_rows(batch.nodes.iter().map(|&v| (feats, v as usize)).collect());
            let input = tape.concat_cols(m, x);
            let h_new = self.gru.forward(tape, &self.params, input, node_prev);
            for (i, &v) in batch.nodes.iter().enumerate() {
                cur[v as usize] = (h_new, i);
            }
        }
        let hidden = tape.gather_rows(cur);
        let raw = self.head.forward(tape, &self.params, hidden);
        tape.sigmoid(raw)
    }

    /// Full toggle-rate table: combinational gates from the model, PIs and
    /// FFs straight from the provided simulation results (the paper: "the
    /// transition probabilities of PIs and FFs comes from RTL level
    /// simulation").
    pub fn predict_probs(
        &self,
        aig: &SeqAig,
        source_probs: &NodeProbabilities,
    ) -> NodeProbabilities {
        let graph = CircuitGraph::build(aig);
        let features = grannite_features(aig, source_probs);
        let mut tape = Tape::new();
        let pred = self.forward(&mut tape, &graph, &features);
        let pred = tape.value(pred);
        let mut out = NodeProbabilities::zeros(aig.len());
        for (id, node) in aig.iter() {
            let v = id.index();
            if node.is_and() || node.is_not() {
                out.p01[v] = pred.get(v, 0) as f64;
                out.p10[v] = pred.get(v, 1) as f64;
                out.p1[v] = 0.5; // Grannite does not model logic probability.
            } else {
                out.p01[v] = source_probs.p01[v];
                out.p10[v] = source_probs.p10[v];
                out.p1[v] = source_probs.p1[v];
            }
        }
        out
    }
}

/// Options for [`train_grannite`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GranniteTrainOptions {
    /// Epochs (paper: 50, L1 loss).
    pub epochs: usize,
    /// ADAM learning rate.
    pub lr: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for GranniteTrainOptions {
    fn default() -> Self {
        GranniteTrainOptions {
            epochs: 20,
            lr: 1e-3,
            seed: 0,
        }
    }
}

/// Trains Grannite with masked L1 loss; returns mean loss per epoch.
pub fn train_grannite(
    model: &mut Grannite,
    samples: &[GranniteSample],
    opts: &GranniteTrainOptions,
) -> Vec<f64> {
    let mut optimizer = Adam::new(opts.lr).with_clip_norm(5.0);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut history = Vec::with_capacity(opts.epochs);
    for _ in 0..opts.epochs {
        order.shuffle(&mut rng);
        let mut total = 0.0f64;
        for &i in &order {
            let s = &samples[i];
            let mut tape = Tape::new();
            let pred = model.forward(&mut tape, &s.graph, &s.features);
            let loss = tape.l1_loss_weighted(pred, &s.target, s.mask.clone());
            total += tape.value(loss).get(0, 0) as f64;
            let grads = tape.backward(loss);
            optimizer.step(&mut model.params, &grads);
        }
        history.push(total / samples.len().max(1) as f64);
    }
    history
}

/// Masked average prediction error of toggle rates on combinational gates.
pub fn evaluate_grannite(model: &Grannite, samples: &[GranniteSample]) -> f64 {
    let mut err = 0.0f64;
    let mut count = 0usize;
    for s in samples {
        let mut tape = Tape::new();
        let pred = model.forward(&mut tape, &s.graph, &s.features);
        let pred = tape.value(pred);
        for r in 0..pred.rows() {
            if s.mask[r] == 0.0 {
                continue;
            }
            for c in 0..2 {
                err += (pred.get(r, c) - s.target.get(r, c)).abs() as f64;
                count += 1;
            }
        }
    }
    err / count.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepseq_sim::{simulate, SimOptions, Workload};

    fn sample_circuit() -> (SeqAig, NodeProbabilities) {
        let mut aig = SeqAig::new("s");
        let a = aig.add_pi("a");
        let b = aig.add_pi("b");
        let g = aig.add_and(a, b);
        let n = aig.add_not(g);
        let q = aig.add_ff("q", false);
        let g2 = aig.add_and(q, n);
        aig.connect_ff(q, g2).unwrap();
        aig.set_output(g2, "y");
        let r = simulate(&aig, &Workload::uniform(2, 0.5), &SimOptions::default());
        (aig, r.probs)
    }

    #[test]
    fn features_gate_pi_ff_rows() {
        let (aig, probs) = sample_circuit();
        let f = grannite_features(&aig, &probs);
        assert_eq!(f.shape(), (6, GRANNITE_FEATURES));
        // PI row carries probabilities; AND row does not.
        assert!(f.get(0, NUM_NODE_TYPES + 2) > 0.0);
        assert_eq!(f.get(2, NUM_NODE_TYPES + 2), 0.0);
    }

    #[test]
    fn mask_covers_comb_only() {
        let (aig, _) = sample_circuit();
        let m = comb_mask(&aig);
        assert_eq!(m, vec![0.0, 0.0, 1.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn predictions_in_unit_interval() {
        let (aig, probs) = sample_circuit();
        let model = Grannite::new(GranniteConfig {
            hidden_dim: 8,
            seed: 0,
        });
        let out = model.predict_probs(&aig, &probs);
        assert!(out.check_consistency(1.0).is_ok()); // range checks only
                                                     // PI/FF rows pass through simulation values exactly.
        assert_eq!(out.p01[0], probs.p01[0]);
        assert_eq!(out.p1[4], probs.p1[4]);
    }

    #[test]
    fn training_reduces_loss() {
        let (aig, probs) = sample_circuit();
        let samples = vec![GranniteSample::new(&aig, &probs)];
        let mut model = Grannite::new(GranniteConfig {
            hidden_dim: 8,
            seed: 0,
        });
        let history = train_grannite(
            &mut model,
            &samples,
            &GranniteTrainOptions {
                epochs: 15,
                lr: 5e-3,
                seed: 0,
            },
        );
        assert!(history.last().unwrap() < history.first().unwrap());
    }

    #[test]
    fn evaluation_improves_with_training() {
        let (aig, probs) = sample_circuit();
        let samples = vec![GranniteSample::new(&aig, &probs)];
        let mut model = Grannite::new(GranniteConfig {
            hidden_dim: 8,
            seed: 0,
        });
        let before = evaluate_grannite(&model, &samples);
        train_grannite(
            &mut model,
            &samples,
            &GranniteTrainOptions {
                epochs: 15,
                lr: 5e-3,
                seed: 0,
            },
        );
        let after = evaluate_grannite(&model, &samples);
        assert!(after < before, "{before} -> {after}");
    }
}
