//! Offline stand-in for the crates.io `criterion` crate.
//!
//! The build environment for this repository has no access to a cargo
//! registry, so this vendored crate implements the *subset* of the
//! `criterion 0.5` API that `crates/bench/benches/perf_micro.rs` uses:
//! [`Criterion`] with `sample_size` / `measurement_time` /
//! `bench_function`, [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BatchSize`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Unlike a pure no-op shim it really measures: each benchmark is warmed
//! up, iteration counts are calibrated so one sample costs roughly
//! `measurement_time / sample_size`, and per-iteration timings (mean,
//! median, min, max) are printed and written to
//! `target/criterion/<id>/estimates.json` so CI can archive the numbers.
//! It has no statistical regression analysis, plotting, or HTML reports.
//!
//! Swap this path dependency for the real `criterion` in the workspace
//! `Cargo.toml` when registry access is available; no source changes
//! should be required.

#![warn(missing_docs)]

use std::env;
use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How [`Bencher::iter_batched`] amortizes setup cost. All variants behave
/// identically here: setup runs outside the timed region for every batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input; one input per timed call.
    SmallInput,
    /// Large per-iteration input; one input per timed call.
    LargeInput,
    /// Input of unknown size; one input per timed call.
    PerIteration,
}

/// Times a single benchmark routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; only `routine` is
    /// inside the timed region.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filters: Vec<String>,
    list_only: bool,
    output_dir: Option<PathBuf>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            filters: Vec::new(),
            list_only: false,
            output_dir: None,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Applies the command-line options `cargo bench` forwards to the
    /// harness binary. Recognizes `--measurement-time`, `--warm-up-time`,
    /// `--sample-size` and `--list`; other flags are accepted and ignored,
    /// and positional arguments become substring filters on benchmark ids.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--measurement-time" => {
                    if let Some(v) = args.next().and_then(|v| v.parse::<f64>().ok()) {
                        self.measurement_time = Duration::from_secs_f64(v);
                    }
                }
                "--warm-up-time" => {
                    if let Some(v) = args.next().and_then(|v| v.parse::<f64>().ok()) {
                        self.warm_up_time = Duration::from_secs_f64(v);
                    }
                }
                "--sample-size" => {
                    if let Some(v) = args.next().and_then(|v| v.parse::<usize>().ok()) {
                        self.sample_size = v.max(2);
                    }
                }
                "--save-baseline"
                | "--baseline"
                | "--load-baseline"
                | "--color"
                | "--significance-level"
                | "--noise-threshold"
                | "--confidence-level"
                | "--nresamples"
                | "--output-format"
                | "--profile-time" => {
                    // Flag takes a value we do not use.
                    args.next();
                }
                "--list" => self.list_only = true,
                s if s.starts_with("--") => {
                    // Boolean flag we do not use (--bench, --noplot, ...).
                }
                s => self.filters.push(s.to_string()),
            }
        }
        self
    }

    /// Runs (or lists) the benchmark `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if !self.filters.is_empty() && !self.filters.iter().any(|n| id.contains(n.as_str())) {
            return self;
        }
        if self.list_only {
            println!("{id}: benchmark");
            return self;
        }

        // Warm up and calibrate: how many iterations fit in one sample?
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warmup_start = Instant::now();
        f(&mut bencher);
        let mut per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        while warmup_start.elapsed() < self.warm_up_time && per_iter < self.warm_up_time {
            bencher.iters = (bencher.iters * 2).min(1 << 20);
            f(&mut bencher);
            per_iter = (bencher.elapsed / bencher.iters as u32).max(Duration::from_nanos(1));
        }
        let sample_budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample =
            ((sample_budget / per_iter.as_secs_f64()).ceil() as u64).clamp(1, 1 << 24);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters = iters_per_sample;
            f(&mut bencher);
            samples_ns.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let median = samples_ns[samples_ns.len() / 2];
        let min = samples_ns[0];
        let max = samples_ns[samples_ns.len() - 1];

        println!(
            "{id:<50} time: [{} {} {}]",
            format_ns(min),
            format_ns(median),
            format_ns(max)
        );
        self.write_estimates(id, mean, median, min, max, iters_per_sample);
        self
    }

    fn write_estimates(
        &mut self,
        id: &str,
        mean: f64,
        median: f64,
        min: f64,
        max: f64,
        iters: u64,
    ) {
        let Some(dir) = self.resolve_output_dir() else {
            return;
        };
        let safe_id: String = id
            .chars()
            .map(|c| {
                if c.is_alphanumeric() || c == '_' || c == '-' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let bench_dir = dir.join(safe_id);
        if fs::create_dir_all(&bench_dir).is_err() {
            return;
        }
        let json = format!(
            "{{\n  \"id\": \"{id}\",\n  \"unit\": \"ns/iter\",\n  \"mean\": {mean},\n  \
             \"median\": {median},\n  \"min\": {min},\n  \"max\": {max},\n  \
             \"samples\": {},\n  \"iters_per_sample\": {iters}\n}}\n",
            self.sample_size
        );
        let _ = fs::write(bench_dir.join("estimates.json"), json);
    }

    /// `target/criterion`, resolved like the real crate: `CRITERION_HOME`,
    /// then `CARGO_TARGET_DIR`, then the nearest ancestor `target/`.
    fn resolve_output_dir(&mut self) -> Option<PathBuf> {
        if let Some(dir) = &self.output_dir {
            return Some(dir.clone());
        }
        let dir = if let Ok(home) = env::var("CRITERION_HOME") {
            PathBuf::from(home)
        } else if let Ok(target) = env::var("CARGO_TARGET_DIR") {
            PathBuf::from(target).join("criterion")
        } else {
            let mut cur = env::current_dir().ok()?;
            loop {
                if cur.join("target").is_dir() {
                    break cur.join("target").join("criterion");
                }
                if !cur.pop() {
                    break PathBuf::from("target").join("criterion");
                }
            }
        };
        self.output_dir = Some(dir.clone());
        Some(dir)
    }

    /// Prints the closing summary line (kept for API parity).
    pub fn final_summary(&mut self) {}
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Defines a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Defines the harness `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_measures() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        // Keep the unit test from writing into the workspace's real
        // target/criterion directory.
        c.output_dir = Some(env::temp_dir().join("criterion-shim-test"));
        let mut ran = 0u64;
        c.bench_function("shim_smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_times_only_routine() {
        let mut b = Bencher {
            iters: 8,
            elapsed: Duration::ZERO,
        };
        let mut setups = 0;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 16]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 8);
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with('s'));
    }
}
