//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The build environment for this repository has no access to a cargo
//! registry, so this vendored crate re-implements the *subset* of the
//! `proptest 1.x` API that the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//!   [`prop_assert!`] and [`prop_assert_eq!`];
//! * [`strategy::Strategy`] with `prop_map`, implemented for ranges,
//!   tuples, [`strategy::Just`] and [`any`];
//! * [`collection::vec`] with fixed or ranged lengths;
//! * [`test_runner::Config`] (`ProptestConfig::with_cases`).
//!
//! Cases are generated from a deterministic per-test seed stream
//! (case `i` of test `t` always sees the same input), and a failing case
//! panics with the case number and message. There is **no shrinking** and
//! no failure persistence file — rerun the named test to reproduce.
//!
//! Swap this path dependency for the real `proptest` in the workspace
//! `Cargo.toml` when registry access is available; no source changes
//! should be required (generated streams will differ).

#![warn(missing_docs)]

/// Test-case configuration and failure types.
pub mod test_runner {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Mirrors `proptest::test_runner::Config` (the `ProptestConfig` of the
    /// prelude); only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// A property failure: carries the `prop_assert!` message.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Drives one property: `config.cases` deterministic cases through
    /// `strategy`, panicking on the first failure. Called by the `proptest!` macro;
    /// not part of the real crate's public API.
    pub fn run<S, F>(config: &Config, test_name: &str, strategy: S, mut test: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        // FNV-1a over the test name decorrelates sibling tests' streams.
        let mut name_hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            name_hash = (name_hash ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        for case in 0..config.cases {
            let mut rng = StdRng::seed_from_u64(name_hash ^ (case as u64).wrapping_mul(0x9e37));
            let value = strategy.generate(&mut rng);
            if let Err(e) = test(value) {
                panic!(
                    "property '{test_name}' failed at case {case}/{}: {e}",
                    config.cases
                );
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleUniform, Standard};
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A generator of random values, mirroring `proptest::strategy::Strategy`.
    ///
    /// The real trait produces value *trees* supporting shrinking; this
    /// stand-in generates plain values.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `map`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, map }
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    impl<T: SampleUniform + Copy> Strategy for Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.start..self.end)
        }
    }

    /// The [`super::any`] strategy: uniform over a type's full value set.
    #[derive(Debug, Clone)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Standard> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }

    macro_rules! impl_strategy_for_tuple {
        ($($name:ident)+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_strategy_for_tuple!(A);
    impl_strategy_for_tuple!(A B);
    impl_strategy_for_tuple!(A B C);
    impl_strategy_for_tuple!(A B C D);
    impl_strategy_for_tuple!(A B C D E);
    impl_strategy_for_tuple!(A B C D E F);
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A fixed or ranged element count for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

use std::marker::PhantomData;

/// Returns a strategy producing arbitrary values of `T`.
pub fn any<T: rand::Standard>() -> strategy::Any<T> {
    strategy::Any(PhantomData)
}

/// Defines property tests, mirroring `proptest::proptest!`.
///
/// Supports the attribute-first form with an optional
/// `#![proptest_config(...)]` header and one or more
/// `#[test] fn name(binding in strategy, ...) { ... }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $(#[test] fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                $crate::test_runner::run(
                    &config,
                    stringify!($name),
                    ($($strat,)+),
                    |($($arg,)+)| {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Asserts inside a property body, failing the case (not the process),
/// mirroring `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a property body, mirroring
/// `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                            left, right
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                            left, right, format!($($fmt)+)
                        )),
                    );
                }
            }
        }
    };
}

/// Asserts inequality inside a property body, mirroring
/// `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if *left == *right {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
                            left, right
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                if *left == *right {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                            left, right, format!($($fmt)+)
                        )),
                    );
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose(v in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(v < 19);
        }

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(0.0f32..1.0, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn just_yields_value(x in Just(41u8)) {
            prop_assert_eq!(x, 41);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let strat = (0u64..1_000_000, 0.0f64..1.0);
        let a = strat.generate(&mut StdRng::seed_from_u64(11));
        let b = strat.generate(&mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        let config = crate::test_runner::Config::with_cases(5);
        crate::test_runner::run(&config, "always_fails", 0u32..10, |_| {
            Err(crate::test_runner::TestCaseError::fail("nope"))
        });
    }
}
