//! Offline stand-in for the crates.io `rand` crate.
//!
//! The build environment for this repository has no access to a cargo
//! registry, so this vendored crate re-implements the *subset* of the
//! `rand 0.8` API that the DeepSeq workspace uses:
//!
//! * [`Rng`] — `gen`, `gen_range`, `gen_bool`;
//! * [`SeedableRng`] — `seed_from_u64` / `from_seed`;
//! * [`rngs::StdRng`] — here a xoshiro256++ generator (Blackman &
//!   Vigna) seeded through SplitMix64, *not* the ChaCha12 core of the
//!   real crate — streams differ from upstream `rand`, but all consumers
//!   in this workspace assert statistical properties, not exact streams;
//! * [`seq::SliceRandom`] — `shuffle` (Fisher–Yates).
//!
//! Swap this path dependency for the real `rand` in the workspace
//! `Cargo.toml` when registry access is available; no source changes
//! should be required.

#![warn(missing_docs)]

use std::ops::Range;

/// Types that can be sampled uniformly from the generator's raw output.
///
/// Mirrors the role of `rand::distributions::Standard` for the handful of
/// types this workspace draws: floats are uniform in `[0, 1)`, integers
/// uniform over their full range, `bool` is a fair coin.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types that [`Rng::gen_range`] can sample from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws one value uniformly from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = range.end.abs_diff(range.start) as u128;
                // Lemire-style widening multiply with rejection for an
                // unbiased draw from [0, span).
                let mut m = (rng.next_u64() as u128).wrapping_mul(span);
                let threshold = (u64::MAX as u128 + 1 - span) % span;
                while (m & u64::MAX as u128) < threshold {
                    m = (rng.next_u64() as u128).wrapping_mul(span);
                }
                let offset = (m >> 64) as u128;
                if (range.start as i128) < 0 {
                    ((range.start as i128) + offset as i128) as $t
                } else {
                    range.start + offset as $t
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let unit: $t = Standard::sample(rng);
                range.start + unit * (range.end - range.start)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// The raw generator interface: a source of `u64` words.
pub trait RngCore {
    /// Produces the next raw 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        let unit: f64 = Standard::sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically constructible generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a single `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// The real `rand::rngs::StdRng` is ChaCha12; this stand-in trades
    /// cryptographic strength (unneeded here) for zero dependencies while
    /// keeping excellent statistical quality and the same construction API.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point of xoshiro; nudge it.
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Extension trait providing random slice operations.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_in_range_and_centered() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
        let y: f32 = rng.gen();
        assert!((0.0..1.0).contains(&y));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
            let v = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(-1.0..1.0f32);
            assert!((-1.0..1.0).contains(&f));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
